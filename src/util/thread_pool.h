// A work-stealing executor for CPU-parallel fan-out of independent tasks
// (profile hypercube groups, cold miss-batches, per-camera ingest, bench
// sweeps).
//
// The first-generation pool was a central std::deque guarded by one mutex +
// condvar: every task paid a std::function heap allocation, a contended lock
// round-trip on submit AND on dequeue, and a condvar wake. For the columnar
// detector kernel — whose per-chunk work is a few microseconds — that
// overhead ate the entire parallel win (BENCH_kernel.json showed the pooled
// path SLOWER than serial). This executor removes both costs on the hot
// path:
//
//  * Per-worker Chase-Lev deques — each worker owns a bounded lock-free
//    deque; it pushes and pops its own bottom without locks, and idle
//    workers steal from the top with a single CAS. External submitters go
//    through a small mutex-guarded injection queue (the cold path).
//  * Bulk ParallelFor(first, last, min_chunk, body) — dispatches an index
//    range as ONE heap allocation total (a shared bulk descriptor), not one
//    std::function per task. Workers and the calling thread claim fixed
//    [k*min_chunk, (k+1)*min_chunk) chunks with an atomic fetch_add; the
//    caller participates, so ParallelFor makes progress even when every
//    worker is busy with unrelated work, and returns only when the whole
//    range has run.
//  * Spin-then-park idle protocol — an idle worker spins briefly (stealing),
//    then parks on a condvar guarded by an eventcount-style signal word, so
//    a quiescent pool burns no CPU while a busy one never takes the lock.
//
// Determinism contract: ParallelFor's chunk boundaries are a PURE FUNCTION
// of (first, last, min_chunk) — chunk k is [first + k*min_chunk, ...) at
// every thread count, in inline mode, and under any steal interleaving. The
// executor imposes no ordering between chunks; callers that need
// bit-identical results across thread counts make each chunk's output
// independent of scheduling (per-chunk RNG streams from stable keys, results
// written to pre-sized disjoint slots) — then the body call sequence, and
// therefore every side effect that depends on chunk shape (model batch
// sizes, per-chunk accounting), is identical at any width.
//
// Nested parallelism: ParallelFor called from a task already running ON this
// pool executes the chunk loop inline on that worker (serially). This is
// deliberate — a worker that blocked waiting for sub-chunks could deadlock
// the pool against itself — and it is what lets the serving layer hand ONE
// executor to both the profiler's group fan-out and the output source's
// miss-batch fan-out.
//
// Compatibility: Submit(std::function) and Wait() keep their original
// contract, and a pool resolved to one thread runs everything inline at
// call time (no worker threads at all), which keeps single-threaded
// builds/valgrind/TSAN baselines trivial.

#ifndef SMOKESCREEN_UTIL_THREAD_POOL_H_
#define SMOKESCREEN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smokescreen {
namespace util {

class ThreadPool {
 public:
  /// `num_threads` <= 0 resolves to the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  /// Drains already-queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The resolved worker count (>= 1).
  int num_threads() const { return num_threads_; }

  /// Enqueues a task. With one resolved thread the task runs inline before
  /// Submit returns. From a worker of THIS pool the task goes onto that
  /// worker's own deque (lock-free); from any other thread it goes through
  /// the injection queue. Tasks must not call Wait() on the same pool.
  void Submit(std::function<void()> task) SMK_EXCLUDES(inject_mu_, park_mu_);

  /// Blocks until every Submit()ted task has finished. ParallelFor is
  /// synchronous and already complete when it returns, so Wait() tracks only
  /// Submit() tasks. Must not be called from a task running on this pool.
  void Wait() SMK_EXCLUDES(idle_mu_);

  /// Runs `body(chunk_begin, chunk_end)` over every chunk of [first, last),
  /// where chunk k is [first + k*min_chunk, min(first + (k+1)*min_chunk,
  /// last)). Blocks until the whole range has executed. The calling thread
  /// participates in the work; chunks additionally run on any idle worker.
  /// The chunk sequence is identical at every thread count (see the
  /// determinism contract above); only the assignment of chunks to threads
  /// varies. Reentrant calls from a task on this pool run inline serially.
  /// `body` must be safe to invoke concurrently on disjoint chunks.
  template <typename Body>
  void ParallelFor(int64_t first, int64_t last, int64_t min_chunk, Body&& body) {
    using B = std::remove_reference_t<Body>;
    ParallelForImpl(
        first, last, min_chunk,
        [](void* ctx, int64_t b, int64_t e) { (*static_cast<B*>(ctx))(b, e); },
        const_cast<void*>(static_cast<const void*>(std::addressof(body))));
  }

  /// True when the calling thread is one of this pool's workers (used by
  /// callers that must avoid blocking the pool against itself).
  bool OnWorkerThread() const;

  /// 0 (or negative) -> std::thread::hardware_concurrency(), else the
  /// requested count; never less than 1.
  static int ResolveThreadCount(int requested);

  /// Re-points the thread_pool.* instruments (queue-depth gauge, task
  /// latency histogram, tasks-run counter) at `registry`; nullptr restores
  /// util::MetricsRegistry::Default(). Not synchronized against running
  /// workers — bind before the first Submit(). All pools bound to one
  /// registry share the instruments (the gauge is the aggregate depth).
  /// Every executed unit — a Submit task or one ParallelFor chunk — counts
  /// once in tasks_run and observes once into the latency histogram, so the
  /// totals are bit-exact at any thread count (the counters themselves sum
  /// per-thread cells; see util::metrics).
  void set_metrics_registry(MetricsRegistry* registry) { BindMetrics(registry); }

 private:
  /// A lock-free single-owner deque (Chase-Lev, with the memory orders of
  /// Le et al., "Correct and Efficient Work-Stealing for Weak Memory
  /// Models", spelled as seq_cst accesses instead of standalone fences so
  /// ThreadSanitizer models the synchronization precisely). The owner
  /// pushes/pops `bottom`; thieves CAS `top`. Fixed capacity: a full deque
  /// overflows to the injection queue instead of growing, which bounds
  /// memory and keeps push wait-free.
  struct WsDeque {
    static constexpr size_t kCapacity = 2048;  // Power of two.
    std::atomic<int64_t> top{0};
    std::atomic<int64_t> bottom{0};
    std::unique_ptr<std::atomic<uintptr_t>[]> ring;

    WsDeque() : ring(new std::atomic<uintptr_t>[kCapacity]) {}
    bool Push(uintptr_t item);        // Owner only. False when full.
    bool Pop(uintptr_t* out);         // Owner only.
    bool Steal(uintptr_t* out);       // Any thief. False when empty/lost race.
    bool LooksEmpty() const {
      return bottom.load(std::memory_order_acquire) <=
             top.load(std::memory_order_acquire);
    }
  };

  struct alignas(64) Worker {
    WsDeque deque;
    std::thread thread;
  };

  /// Shared descriptor of one ParallelFor call: workers and the caller claim
  /// chunks via fetch_add on `next`; the thread that completes the final
  /// index signals `cv`. Heap-allocated once per call, freed by the last
  /// reference (caller + one per enqueued helper token).
  struct Bulk {
    void (*fn)(void*, int64_t, int64_t);
    void* ctx;
    int64_t first = 0;
    int64_t last = 0;
    int64_t chunk = 1;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::atomic<int64_t> refs{0};
    util::Mutex mu;
    util::CondVar cv;
    bool complete SMK_GUARDED_BY(mu) = false;
  };

  /// Heap node carrying one Submit() task through the queues.
  struct SubmitNode {
    std::function<void()> fn;
  };

  // Tagged queue items: low bit 0 -> SubmitNode*, low bit 1 -> Bulk* token.
  static constexpr uintptr_t kBulkTag = 1;

  void ParallelForImpl(int64_t first, int64_t last, int64_t min_chunk,
                       void (*fn)(void*, int64_t, int64_t), void* ctx)
      SMK_EXCLUDES(inject_mu_, park_mu_);
  /// Claims and runs chunks of `bulk` until none remain; signals completion.
  void RunBulkChunks(Bulk* bulk);
  void UnrefBulk(Bulk* bulk);
  void RunSubmitNode(SubmitNode* node);
  void ExecuteItem(uintptr_t item);

  void WorkerLoop(int worker_index);
  /// One full acquisition attempt: own deque, injection queue, then one
  /// steal sweep over every other worker. Returns false only if every queue
  /// looked empty during the sweep.
  bool TryAcquire(int worker_index, uintptr_t* item);
  /// Enqueue from the current thread (own deque when on a worker of this
  /// pool, else injection queue), bump the work signal, wake a parked worker.
  void Enqueue(uintptr_t item) SMK_EXCLUDES(inject_mu_, park_mu_);
  void WakeWorkers(int count) SMK_EXCLUDES(park_mu_);

  void BindMetrics(MetricsRegistry* registry);

  /// Registry-bound instruments (never null after construction).
  Gauge* queue_depth_ = nullptr;
  Histogram* task_seconds_ = nullptr;
  Counter* tasks_run_ = nullptr;

  int num_threads_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Cold-path entry for external submitters and deque overflow.
  Mutex inject_mu_;
  std::deque<uintptr_t> inject_queue_ SMK_GUARDED_BY(inject_mu_);

  /// Eventcount-style parking. Producers bump `work_signal_` BEFORE
  /// notifying; a worker records the signal, re-checks all queues, and only
  /// parks if the signal is unchanged under `park_mu_` — so a wakeup can
  /// never be lost between the final check and the wait.
  ///
  /// Ordering: the producer's signal bump followed by its `num_parked_` read
  /// races the parker's `num_parked_` increment followed by its signal
  /// re-check — a Dekker-style store-then-load on each side. Both sides use
  /// seq_cst so the two accesses cannot reorder: with plain acquire/release
  /// the producer could read num_parked_ == 0 (skipping the notify) while
  /// the parker still reads the stale signal (and parks) — a lost wakeup on
  /// weakly-ordered hardware.
  Mutex park_mu_;
  CondVar park_cv_;
  std::atomic<uint64_t> work_signal_{0};
  std::atomic<int> num_parked_{0};

  /// Submit() bookkeeping for Wait().
  std::atomic<int64_t> outstanding_{0};
  Mutex idle_mu_;
  CondVar idle_cv_;

  std::atomic<bool> stop_{false};
};

}  // namespace util
}  // namespace smokescreen

#endif  // SMOKESCREEN_UTIL_THREAD_POOL_H_
