// Clang Thread Safety Analysis annotations (abseil-style, SMK_ prefix).
//
// These macros move the repo's locking invariants out of comments and into
// the type system: a field tagged SMK_GUARDED_BY(mu) may only be touched
// while `mu` is held, a helper tagged SMK_REQUIRES(mu) may only be called
// with `mu` held, and a public API tagged SMK_EXCLUDES(mu) may not be
// entered while the caller already holds `mu` (self-deadlock). Under Clang
// with -Wthread-safety the compiler PROVES these contracts on every build —
// a violation is a compile error under -Werror=thread-safety — turning the
// race classes ThreadSanitizer only catches on lucky interleavings into
// build breaks. Under GCC (which has no thread-safety analysis) every macro
// expands to nothing, so the annotations are zero-cost and the default
// toolchain is unaffected.
//
// Conventions (see DESIGN.md "Static analysis & lock discipline"):
//  * Every mutex in src/ is a util::Mutex (util/mutex.h), never a bare
//    std::mutex — the wrapper carries the SMK_LOCKABLE capability the
//    analysis keys on.
//  * Every field a mutex protects carries SMK_GUARDED_BY(mu) (or
//    SMK_PT_GUARDED_BY for the pointee of an owned pointer).
//  * Private helpers that assume "caller holds the lock" are annotated
//    SMK_REQUIRES(mu) and call mu.AssertHeld() on entry.
//  * SMK_NO_THREAD_SAFETY_ANALYSIS is a last resort for protocols the
//    analysis cannot express (lock-free publication, adopt-lock tricks);
//    each use carries a justification comment.

#ifndef SMOKESCREEN_UTIL_THREAD_ANNOTATIONS_H_
#define SMOKESCREEN_UTIL_THREAD_ANNOTATIONS_H_

// Clang exposes the analysis attributes whether or not -Wthread-safety is
// on; other compilers (GCC) define none of them, so the macros vanish and
// annotated code compiles identically.
#if defined(__clang__) && !defined(SMOKESCREEN_NO_THREAD_SAFETY_ANALYSIS)
#define SMK_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SMK_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" names the capability kind
/// in diagnostics). util::Mutex is the only lockable type in the tree.
#define SMK_LOCKABLE SMK_THREAD_ANNOTATION__(capability("mutex"))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define SMK_SCOPED_LOCKABLE SMK_THREAD_ANNOTATION__(scoped_lockable)

/// Data members: may only be read or written while `x` is held.
#define SMK_GUARDED_BY(x) SMK_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer members: the POINTEE may only be accessed while `x` is held (the
/// pointer itself is unguarded).
#define SMK_PT_GUARDED_BY(x) SMK_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define SMK_ACQUIRED_BEFORE(...) SMK_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SMK_ACQUIRED_AFTER(...) SMK_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Functions: the caller must hold the listed capabilities (exclusively /
/// shared) on entry, and still holds them on exit.
#define SMK_REQUIRES(...) SMK_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SMK_REQUIRES_SHARED(...) \
  SMK_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire / release the listed capabilities (no argument means
/// `this`, for members of a lockable class).
#define SMK_ACQUIRE(...) SMK_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SMK_ACQUIRE_SHARED(...) SMK_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define SMK_RELEASE(...) SMK_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SMK_RELEASE_SHARED(...) SMK_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Functions: acquire the capability only when returning `b` (TryLock).
#define SMK_TRY_ACQUIRE(b, ...) SMK_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Functions: the caller must NOT hold the listed capabilities (the API
/// takes them itself; entering while held would self-deadlock).
#define SMK_EXCLUDES(...) SMK_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Functions: assert (at runtime) that the capability is held, teaching the
/// analysis it is held from here on (util::Mutex::AssertHeld).
#define SMK_ASSERT_CAPABILITY(x) SMK_THREAD_ANNOTATION__(assert_capability(x))

/// Functions returning a reference/pointer to a capability (lock accessors).
#define SMK_RETURN_CAPABILITY(x) SMK_THREAD_ANNOTATION__(lock_returned(x))

/// Opts one function out of the analysis. Last resort; justify every use.
#define SMK_NO_THREAD_SAFETY_ANALYSIS SMK_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SMOKESCREEN_UTIL_THREAD_ANNOTATIONS_H_
