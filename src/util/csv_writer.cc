#include "util/csv_writer.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace smokescreen {
namespace util {

CsvWriter::~CsvWriter() {
  Status status = Close();
  if (!status.ok()) {
    SMK_LOG(WARNING) << "CsvWriter destructor: close failed: " << status.ToString();
  }
}

std::string CsvWriter::QuoteField(const std::string& field) {
  // \r matters: RFC-4180 readers treat a bare CR as (part of) a record
  // terminator, so an unquoted CR splits the row.
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

Status CsvWriter::Open(const std::string& path, const std::vector<std::string>& header,
                       Env* env) {
  if (file_ != nullptr) return Status::FailedPrecondition("CsvWriter already open");
  if (env == nullptr) env = &Env::Default();
  SMK_ASSIGN_OR_RETURN(file_, env->NewWritableFile(path));
  arity_ = header.size();
  return WriteRow(header);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return Status::FailedPrecondition("CsvWriter not open");
  if (cells.size() != arity_) {
    return Status::InvalidArgument("row arity " + std::to_string(cells.size()) +
                                   " != header arity " + std::to_string(arity_));
  }
  std::string row;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) row += ',';
    row += QuoteField(cells[i]);
  }
  row += '\n';
  return file_->Append(std::span<const unsigned char>(
      reinterpret_cast<const unsigned char*>(row.data()), row.size()));
}

Status CsvWriter::WriteRow(const std::vector<double>& cells) {
  std::vector<std::string> strs;
  strs.reserve(cells.size());
  for (double v : cells) strs.push_back(FormatDouble(v, 6));
  return WriteRow(strs);
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  std::unique_ptr<WritableFile> file = std::move(file_);
  Status sync_status = file->Sync();
  Status close_status = file->Close();
  if (!sync_status.ok()) return sync_status;
  return close_status;
}

}  // namespace util
}  // namespace smokescreen
