#include "util/csv_writer.h"

#include "util/string_util.h"

namespace smokescreen {
namespace util {

CsvWriter::~CsvWriter() { Close().CheckOk(); }

std::string CsvWriter::QuoteField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

Status CsvWriter::Open(const std::string& path, const std::vector<std::string>& header) {
  if (out_.is_open()) return Status::FailedPrecondition("CsvWriter already open");
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) return Status::IoError("cannot open " + path);
  arity_ = header.size();
  return WriteRow(header);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return Status::FailedPrecondition("CsvWriter not open");
  if (cells.size() != arity_) {
    return Status::InvalidArgument("row arity " + std::to_string(cells.size()) +
                                   " != header arity " + std::to_string(arity_));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << QuoteField(cells[i]);
  }
  out_ << '\n';
  if (!out_) return Status::IoError("write failed");
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<double>& cells) {
  std::vector<std::string> strs;
  strs.reserve(cells.size());
  for (double v : cells) strs.push_back(FormatDouble(v, 6));
  return WriteRow(strs);
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.close();
  if (out_.fail()) return Status::IoError("close failed");
  return Status::OK();
}

}  // namespace util
}  // namespace smokescreen
