// ASCII line plots for terminal-rendered tradeoff curves.
//
// The paper's administrators examine 2-D plots of cube slices (§3.1,
// Figures 1-3). This renderer draws one or more (x, y) series as an ASCII
// chart so the CLI and examples can show actual curves, not just tables.

#ifndef SMOKESCREEN_UTIL_ASCII_PLOT_H_
#define SMOKESCREEN_UTIL_ASCII_PLOT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace smokescreen {
namespace util {

struct PlotSeries {
  std::string label;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;  // (x, y), any order.
};

struct PlotOptions {
  int width = 60;   // Plot-area columns.
  int height = 16;  // Plot-area rows.
  std::string x_label = "x";
  std::string y_label = "y";
  /// Fixed y-range; when min == max the range is derived from the data.
  double y_min = 0.0;
  double y_max = 0.0;
};

/// Renders the series into a multi-line string. Error when no series has
/// points or the canvas is degenerate.
util::Result<std::string> RenderAsciiPlot(const std::vector<PlotSeries>& series,
                                          const PlotOptions& options);

}  // namespace util
}  // namespace smokescreen

#endif  // SMOKESCREEN_UTIL_ASCII_PLOT_H_
