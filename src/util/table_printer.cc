#include "util/table_printer.h"

#include <algorithm>
#include <ostream>

#include "util/string_util.h"

namespace smokescreen {
namespace util {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(FormatDouble(v));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  for (size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToCsv() const {
  std::string out = Join(header_, ",") + "\n";
  for (const auto& row : rows_) out += Join(row, ",") + "\n";
  return out;
}

}  // namespace util
}  // namespace smokescreen
