// Detector interface and the shared calibrated detection model.
//
// A simulated detector maps (frame, inference resolution, class) to a count
// of detections, exactly the quantity the paper's frame-level UDFs produce.
// Outputs are deterministic: the same frame at the same resolution always
// yields the same count (as with a real network), via stateless hashing of
// (dataset, frame, object track, resolution, model).
//
// The accuracy model has three calibrated ingredients:
//  * recall: a logistic curve in the *effective* object size
//      s_eff = apparent_size * (resolution / reference_resolution) * contrast,
//    so reducing resolution shrinks objects toward the miss region — the
//    systematic, one-directional bias that makes resolution reduction a
//    NON-RANDOM intervention in the paper's taxonomy;
//  * false positives: a small Poisson clutter term;
//  * model quirks: hooks for pathological behaviours such as the paper's
//    Figure 7/8 anomaly (YOLOv4 at 384x384 on night video).

#ifndef SMOKESCREEN_DETECT_DETECTOR_H_
#define SMOKESCREEN_DETECT_DETECTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"
#include "video/dataset.h"
#include "video/types.h"

namespace smokescreen {
namespace detect {

/// Per-class logistic calibration of a detector at its confidence threshold.
struct ClassCalibration {
  /// Effective object size (pixels) at which recall is half the plateau.
  double s50 = 15.0;
  /// Logistic width (pixels); smaller = sharper size cutoff.
  double width = 4.0;
  /// Asymptotic recall for large, clear objects.
  double plateau = 0.98;
  /// Expected false positives per frame at full resolution.
  double fp_rate = 0.02;
};

class Detector {
 public:
  virtual ~Detector() = default;

  virtual const std::string& name() const = 0;
  /// Stable identity used in the determinism hash.
  virtual uint64_t model_id() const = 0;
  /// Largest supported inference resolution ("original" for this model).
  virtual int max_resolution() const = 0;
  /// Required resolution granularity (e.g. 64 for Mask R-CNN, 32 for YOLO).
  virtual int resolution_stride() const = 0;

  /// Checks resolution is positive, a multiple of the stride, and <= max.
  util::Status ValidateResolution(int resolution) const;

  /// Number of detections of `cls` in the given frame when inference runs at
  /// `resolution`. `contrast_scale` < 1 models appearance-degrading
  /// interventions (noise addition, lossy compression).
  virtual util::Result<int> CountDetections(const video::VideoDataset& dataset,
                                            int64_t frame_index, int resolution,
                                            video::ObjectClass cls,
                                            double contrast_scale = 1.0) const = 0;

  /// Batched counterpart of CountDetections: one invocation covers all of
  /// `frame_indices`, writing counts into `out` (same length, same order).
  /// Counts are bit-identical to per-frame CountDetections calls; batching
  /// only amortizes per-invocation setup. On ANY error `out` is left
  /// entirely untouched — implementations validate the whole request up
  /// front (or buffer), never exposing a partially written prefix. The
  /// default implementation loops over CountDetections into a temporary;
  /// calibrated models override it with a columnar kernel over the
  /// dataset's scene index.
  virtual util::Status CountBatch(const video::VideoDataset& dataset,
                                  std::span<const int64_t> frame_indices, int resolution,
                                  video::ObjectClass cls, double contrast_scale,
                                  std::span<int> out) const;
};

/// Base class implementing the calibrated recall/false-positive model.
class CalibratedDetector : public Detector {
 public:
  CalibratedDetector(std::string name, uint64_t model_id, int max_resolution,
                     int resolution_stride,
                     std::array<ClassCalibration, video::kNumObjectClasses> calibrations);

  const std::string& name() const override { return name_; }
  uint64_t model_id() const override { return model_id_; }
  int max_resolution() const override { return max_resolution_; }
  int resolution_stride() const override { return resolution_stride_; }

  util::Result<int> CountDetections(const video::VideoDataset& dataset, int64_t frame_index,
                                    int resolution, video::ObjectClass cls,
                                    double contrast_scale) const override;

  /// Columnar kernel: walks only the queried class's contiguous SoA column
  /// of the dataset's SceneIndex (never the AoS object lists), with all
  /// per-(resolution, class, contrast) constants hoisted to per-batch
  /// scalars and the (dataset, frame) hash prefix hoisted per frame via a
  /// resumable stats::HashStream. The recall sigmoid is evaluated over a
  /// flat tile so the surrounding arithmetic vectorizes; std::exp and the
  /// hash chain run in the scalar stream order, keeping every count
  /// BIT-IDENTICAL to per-frame CountDetections. Validates the resolution
  /// and every frame index before writing anything to `out`.
  util::Status CountBatch(const video::VideoDataset& dataset,
                          std::span<const int64_t> frame_indices, int resolution,
                          video::ObjectClass cls, double contrast_scale,
                          std::span<int> out) const override;

  /// Recall of one object at the given resolution (exposed for tests and
  /// calibration plots).
  double ObjectRecall(const video::GtObject& obj, int resolution, int reference_resolution,
                      double contrast_scale) const;

 protected:
  /// Probability that a *detected* object is reported twice (NMS failure).
  /// Default 0; SimYoloV4 overrides this with its 384px night-scene quirk.
  virtual double DuplicateProbability(const video::Frame& frame, int resolution,
                                      video::ObjectClass cls) const;

  /// Batched counterpart: fills `out[i]` with DuplicateProbability for
  /// `frame_indices[i]`, value-identical to per-frame calls. The base
  /// implementation loops the per-frame virtual; a model whose duplicate
  /// term is a closed form over scene fields overrides it with a tight
  /// non-virtual loop over the scene index's flat columns, so the batch
  /// kernel's frame pass carries no per-frame indirect call.
  virtual void DuplicateProbabilityBatch(const video::VideoDataset& dataset,
                                         std::span<const int64_t> frame_indices, int resolution,
                                         video::ObjectClass cls, std::span<double> out) const;

 private:
  /// Per-frame counting core shared by the scalar and batched entry points,
  /// so both produce literally the same arithmetic (bit-identical counts).
  /// All frame-independent setup is passed in precomputed.
  int CountFrameImpl(const video::VideoDataset& dataset, const video::Frame& frame,
                     int resolution, video::ObjectClass cls, double contrast_scale,
                     const ClassCalibration& cal, uint64_t res_bits, uint64_t cls_bits,
                     uint64_t contrast_bits, double res_factor) const;

  /// Guard-banded lookup acceleration for the recall Bernoulli, built once
  /// per class at construction. The [0, s_detect_certain) range of effective
  /// object size is cut into kBands buckets; each stores CONSERVATIVE
  /// integer thresholds on the 53-bit uniform draw: draws below `sure_lo`
  /// are certainly below the bucket's minimum recall (detected), draws at or
  /// above `sure_hi` are certainly at or above its maximum recall (missed).
  /// Only draws inside the (padded) ambiguity band fall back to the exact
  /// std::exp logistic — so the decision is bit-identical to always
  /// evaluating the sigmoid, while the hot loop stays free of libm calls.
  /// Above s_detect_certain the computed logistic argument is <= -37, where
  /// 1.0 + exp(a) rounds to exactly 1.0 and recall == plateau exactly.
  struct RecallBands {
    static constexpr int kBands = 1024;
    bool usable = false;        // plateau in (0, 1) and finite geometry.
    double s_detect_certain = 0.0;
    double inv_band_width = 0.0;
    std::vector<uint64_t> sure_lo;  // (hash >> 11) <  sure_lo[b] => detected.
    std::vector<uint64_t> sure_hi;  // (hash >> 11) >= sure_hi[b] => missed.
  };
  static RecallBands BuildRecallBands(const ClassCalibration& cal);

  std::string name_;
  uint64_t model_id_;
  int max_resolution_;
  int resolution_stride_;
  std::array<ClassCalibration, video::kNumObjectClasses> calibrations_;
  std::array<RecallBands, video::kNumObjectClasses> recall_bands_;
};

}  // namespace detect
}  // namespace smokescreen

#endif  // SMOKESCREEN_DETECT_DETECTOR_H_
