// Detector interface and the shared calibrated detection model.
//
// A simulated detector maps (frame, inference resolution, class) to a count
// of detections, exactly the quantity the paper's frame-level UDFs produce.
// Outputs are deterministic: the same frame at the same resolution always
// yields the same count (as with a real network), via stateless hashing of
// (dataset, frame, object track, resolution, model).
//
// The accuracy model has three calibrated ingredients:
//  * recall: a logistic curve in the *effective* object size
//      s_eff = apparent_size * (resolution / reference_resolution) * contrast,
//    so reducing resolution shrinks objects toward the miss region — the
//    systematic, one-directional bias that makes resolution reduction a
//    NON-RANDOM intervention in the paper's taxonomy;
//  * false positives: a small Poisson clutter term;
//  * model quirks: hooks for pathological behaviours such as the paper's
//    Figure 7/8 anomaly (YOLOv4 at 384x384 on night video).

#ifndef SMOKESCREEN_DETECT_DETECTOR_H_
#define SMOKESCREEN_DETECT_DETECTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "util/status.h"
#include "video/dataset.h"
#include "video/types.h"

namespace smokescreen {
namespace detect {

/// Per-class logistic calibration of a detector at its confidence threshold.
struct ClassCalibration {
  /// Effective object size (pixels) at which recall is half the plateau.
  double s50 = 15.0;
  /// Logistic width (pixels); smaller = sharper size cutoff.
  double width = 4.0;
  /// Asymptotic recall for large, clear objects.
  double plateau = 0.98;
  /// Expected false positives per frame at full resolution.
  double fp_rate = 0.02;
};

class Detector {
 public:
  virtual ~Detector() = default;

  virtual const std::string& name() const = 0;
  /// Stable identity used in the determinism hash.
  virtual uint64_t model_id() const = 0;
  /// Largest supported inference resolution ("original" for this model).
  virtual int max_resolution() const = 0;
  /// Required resolution granularity (e.g. 64 for Mask R-CNN, 32 for YOLO).
  virtual int resolution_stride() const = 0;

  /// Checks resolution is positive, a multiple of the stride, and <= max.
  util::Status ValidateResolution(int resolution) const;

  /// Number of detections of `cls` in the given frame when inference runs at
  /// `resolution`. `contrast_scale` < 1 models appearance-degrading
  /// interventions (noise addition, lossy compression).
  virtual util::Result<int> CountDetections(const video::VideoDataset& dataset,
                                            int64_t frame_index, int resolution,
                                            video::ObjectClass cls,
                                            double contrast_scale = 1.0) const = 0;

  /// Batched counterpart of CountDetections: one invocation covers all of
  /// `frame_indices`, writing counts into `out` (same length, same order).
  /// Counts are bit-identical to per-frame CountDetections calls; batching
  /// only amortizes per-invocation setup. The default implementation loops
  /// over CountDetections; calibrated models override it to hoist the
  /// resolution check, calibration lookup and hash-stream derivation out of
  /// the frame loop.
  virtual util::Status CountBatch(const video::VideoDataset& dataset,
                                  std::span<const int64_t> frame_indices, int resolution,
                                  video::ObjectClass cls, double contrast_scale,
                                  std::span<int> out) const;
};

/// Base class implementing the calibrated recall/false-positive model.
class CalibratedDetector : public Detector {
 public:
  CalibratedDetector(std::string name, uint64_t model_id, int max_resolution,
                     int resolution_stride,
                     std::array<ClassCalibration, video::kNumObjectClasses> calibrations);

  const std::string& name() const override { return name_; }
  uint64_t model_id() const override { return model_id_; }
  int max_resolution() const override { return max_resolution_; }
  int resolution_stride() const override { return resolution_stride_; }

  util::Result<int> CountDetections(const video::VideoDataset& dataset, int64_t frame_index,
                                    int resolution, video::ObjectClass cls,
                                    double contrast_scale) const override;

  util::Status CountBatch(const video::VideoDataset& dataset,
                          std::span<const int64_t> frame_indices, int resolution,
                          video::ObjectClass cls, double contrast_scale,
                          std::span<int> out) const override;

  /// Recall of one object at the given resolution (exposed for tests and
  /// calibration plots).
  double ObjectRecall(const video::GtObject& obj, int resolution, int reference_resolution,
                      double contrast_scale) const;

 protected:
  /// Probability that a *detected* object is reported twice (NMS failure).
  /// Default 0; SimYoloV4 overrides this with its 384px night-scene quirk.
  virtual double DuplicateProbability(const video::Frame& frame, int resolution,
                                      video::ObjectClass cls) const;

 private:
  /// Per-frame counting core shared by the scalar and batched entry points,
  /// so both produce literally the same arithmetic (bit-identical counts).
  /// All frame-independent setup is passed in precomputed.
  int CountFrameImpl(const video::VideoDataset& dataset, const video::Frame& frame,
                     int resolution, video::ObjectClass cls, double contrast_scale,
                     const ClassCalibration& cal, uint64_t res_bits, uint64_t cls_bits,
                     uint64_t contrast_bits, double res_factor) const;

  std::string name_;
  uint64_t model_id_;
  int max_resolution_;
  int resolution_stride_;
  std::array<ClassCalibration, video::kNumObjectClasses> calibrations_;
};

}  // namespace detect
}  // namespace smokescreen

#endif  // SMOKESCREEN_DETECT_DETECTOR_H_
