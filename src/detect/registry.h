// Name-based detector registry, so examples/benches can select a model UDF
// by string ("yolov4", "maskrcnn", "mtcnn") the way a query names its UDF.

#ifndef SMOKESCREEN_DETECT_REGISTRY_H_
#define SMOKESCREEN_DETECT_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "util/status.h"

namespace smokescreen {
namespace detect {

/// Creates a detector by registered name. Known names: "yolov4", "maskrcnn",
/// "mtcnn" (case-sensitive).
util::Result<std::unique_ptr<Detector>> MakeDetector(const std::string& name);

/// Names accepted by MakeDetector.
std::vector<std::string> RegisteredDetectorNames();

}  // namespace detect
}  // namespace smokescreen

#endif  // SMOKESCREEN_DETECT_REGISTRY_H_
