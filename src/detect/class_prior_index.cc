#include "detect/class_prior_index.h"

namespace smokescreen {
namespace detect {

using util::Result;
using video::ObjectClass;

Result<ClassPriorIndex> ClassPriorIndex::Build(const video::VideoDataset& dataset,
                                               const Detector& person_detector,
                                               const Detector& face_detector) {
  std::vector<uint8_t> masks(static_cast<size_t>(dataset.num_frames()), 0);
  const int person_res = person_detector.max_resolution();
  const int face_res = face_detector.max_resolution();
  for (int64_t i = 0; i < dataset.num_frames(); ++i) {
    uint8_t mask = 0;
    SMK_ASSIGN_OR_RETURN(int cars, person_detector.CountDetections(dataset, i, person_res,
                                                                   ObjectClass::kCar, 1.0));
    if (cars > 0) mask |= 1u << static_cast<int>(ObjectClass::kCar);
    SMK_ASSIGN_OR_RETURN(int persons, person_detector.CountDetections(dataset, i, person_res,
                                                                      ObjectClass::kPerson, 1.0));
    if (persons > 0) mask |= 1u << static_cast<int>(ObjectClass::kPerson);
    SMK_ASSIGN_OR_RETURN(int faces, face_detector.CountDetections(dataset, i, face_res,
                                                                  ObjectClass::kFace, 1.0));
    if (faces > 0) mask |= 1u << static_cast<int>(ObjectClass::kFace);
    masks[static_cast<size_t>(i)] = mask;
  }
  return ClassPriorIndex(std::move(masks));
}

double ClassPriorIndex::ContainmentFraction(ObjectClass cls) const {
  if (masks_.empty()) return 0.0;
  int64_t count = 0;
  for (uint8_t mask : masks_) {
    if (mask & (1u << static_cast<int>(cls))) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(masks_.size());
}

std::vector<int64_t> ClassPriorIndex::FramesWithoutAny(const video::ClassSet& set) const {
  std::vector<int64_t> out;
  out.reserve(masks_.size());
  for (size_t i = 0; i < masks_.size(); ++i) {
    if ((masks_[i] & set.mask()) == 0) out.push_back(static_cast<int64_t>(i));
  }
  return out;
}

}  // namespace detect
}  // namespace smokescreen
