#include "detect/registry.h"

#include "detect/models.h"

namespace smokescreen {
namespace detect {

util::Result<std::unique_ptr<Detector>> MakeDetector(const std::string& name) {
  if (name == "yolov4") return MakeSimYoloV4();
  if (name == "maskrcnn") return MakeSimMaskRcnn();
  if (name == "mtcnn") return MakeSimMtcnn();
  if (name == "ssd") return MakeSimSsd();
  return util::Status::NotFound("no detector registered as '" + name + "'");
}

std::vector<std::string> RegisteredDetectorNames() { return {"yolov4", "maskrcnn", "mtcnn", "ssd"}; }

}  // namespace detect
}  // namespace smokescreen
