// Per-frame restricted-class prior.
//
// The paper precomputes, for every frame, which privacy-sensitive classes it
// contains ("person" via YOLOv4@0.7, "face" via MTCNN@0.8) and stores that as
// prior information; the image-removal intervention then deletes frames whose
// prior intersects the administrator's restricted set.

#ifndef SMOKESCREEN_DETECT_CLASS_PRIOR_INDEX_H_
#define SMOKESCREEN_DETECT_CLASS_PRIOR_INDEX_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "util/status.h"
#include "video/dataset.h"
#include "video/types.h"

namespace smokescreen {
namespace detect {

class ClassPriorIndex {
 public:
  /// Scans the dataset once with the given detectors at their maximum
  /// resolutions: `person_detector` decides "person" containment and
  /// `face_detector` decides "face" containment. "car" containment is also
  /// recorded (from `person_detector`) for completeness.
  static util::Result<ClassPriorIndex> Build(const video::VideoDataset& dataset,
                                             const Detector& person_detector,
                                             const Detector& face_detector);

  int64_t num_frames() const { return static_cast<int64_t>(masks_.size()); }

  bool Contains(int64_t frame_index, video::ObjectClass cls) const {
    return (masks_[static_cast<size_t>(frame_index)] & (1u << static_cast<int>(cls))) != 0;
  }

  /// True when the frame contains any class in `set`.
  bool ContainsAny(int64_t frame_index, const video::ClassSet& set) const {
    return (masks_[static_cast<size_t>(frame_index)] & set.mask()) != 0;
  }

  /// Fraction of frames containing `cls` (the paper reports these: 14.18%
  /// person / 4.02% face on night-street, etc.).
  double ContainmentFraction(video::ObjectClass cls) const;

  /// Indices of frames containing no class in `set` (the surviving frames
  /// after the image-removal intervention).
  std::vector<int64_t> FramesWithoutAny(const video::ClassSet& set) const;

 private:
  explicit ClassPriorIndex(std::vector<uint8_t> masks) : masks_(std::move(masks)) {}
  std::vector<uint8_t> masks_;
};

}  // namespace detect
}  // namespace smokescreen

#endif  // SMOKESCREEN_DETECT_CLASS_PRIOR_INDEX_H_
