#include "detect/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define SMK_KERNEL_X86 1
#endif

#include "stats/rng.h"
#include "video/scene_index.h"

namespace smokescreen {
namespace detect {

using util::Result;
using util::Status;
using video::Frame;
using video::GtObject;
using video::ObjectClass;
using video::VideoDataset;

Status Detector::CountBatch(const VideoDataset& dataset, std::span<const int64_t> frame_indices,
                            int resolution, ObjectClass cls, double contrast_scale,
                            std::span<int> out) const {
  if (out.size() != frame_indices.size()) {
    return Status::InvalidArgument("CountBatch: out size " + std::to_string(out.size()) +
                                   " != frame count " + std::to_string(frame_indices.size()));
  }
  // Buffer the loop so a mid-batch failure (bad index, model error) leaves
  // `out` untouched instead of exposing a partially written prefix.
  std::vector<int> counts(frame_indices.size());
  for (size_t i = 0; i < frame_indices.size(); ++i) {
    SMK_ASSIGN_OR_RETURN(counts[i], CountDetections(dataset, frame_indices[i], resolution, cls,
                                                    contrast_scale));
  }
  std::copy(counts.begin(), counts.end(), out.begin());
  return Status::OK();
}

Status Detector::ValidateResolution(int resolution) const {
  if (resolution <= 0) return Status::InvalidArgument("resolution must be positive");
  if (resolution > max_resolution()) {
    return Status::InvalidArgument(name() + " supports at most " +
                                   std::to_string(max_resolution()) + "px, got " +
                                   std::to_string(resolution));
  }
  if (resolution % resolution_stride() != 0) {
    return Status::InvalidArgument(name() + " requires resolutions in multiples of " +
                                   std::to_string(resolution_stride()) + ", got " +
                                   std::to_string(resolution));
  }
  return Status::OK();
}

CalibratedDetector::CalibratedDetector(
    std::string name, uint64_t model_id, int max_resolution, int resolution_stride,
    std::array<ClassCalibration, video::kNumObjectClasses> calibrations)
    : name_(std::move(name)),
      model_id_(model_id),
      max_resolution_(max_resolution),
      resolution_stride_(resolution_stride),
      calibrations_(calibrations) {
  for (size_t c = 0; c < calibrations_.size(); ++c) {
    recall_bands_[c] = BuildRecallBands(calibrations_[c]);
  }
}

namespace {

constexpr double kTwo53 = 9007199254740992.0;  // 2^53; u = (hash >> 11) / 2^53.

// Exact-sigmoid fallback for draws inside a band's ambiguity window. Kept
// out of line so the hot kernel loop contains no libm call site (std::exp
// would otherwise force the register allocator to spill the hash stream and
// column pointers across every iteration). The expression matches
// ObjectRecall / CountFrameImpl literally, which is what makes the banded
// decision bit-identical to the scalar path.
[[gnu::noinline]] bool ExactRecallDetect(double s_eff, double s50, double width, double plateau,
                                         uint64_t h) {
  const double recall = plateau / (1.0 + std::exp(-(s_eff - s50) / width));
  return recall >= 1.0 || static_cast<double>(h) * 0x1.0p-53 < recall;
}

// Keeps a computed flag materialized as a register value (setcc). Without
// the barrier GCC re-expands flag arithmetic like `count += (h < lo)` back
// into a conditional branch on the detect Bernoulli — whose outcome is
// data-random (detect rates far from 0 or 1 on real columns), so the
// mispredict penalty dominates the whole decision loop.
inline void PinFlag(unsigned& v) {
#if defined(__GNUC__)
  asm("" : "+r"(v));
#endif
}

// ---------------------------------------------------------------------------
// Flat lane hashing.
//
// The determinism stream (stats::HashStream) is a serial (state, acc) chain
// per draw, but draws for DIFFERENT objects/frames are completely
// independent. The lane passes below exploit that: given per-lane suspended
// streams (state[k], acc[k]), absorb an optional per-lane word, then a
// shared run of constant words, then produce one finalized hash per finish
// word — with every lane's chain independent, so the loop runs at multiply
// THROUGHPUT instead of chain latency, and (on AVX-512) eight lanes wide.
//
// Both implementations replicate HashStream::Absorb/Finalize EXACTLY
// (integer ops only), so the produced hashes are bit-identical to the
// scalar stream on every ISA; stats_rng_test pins the equivalence.
// ---------------------------------------------------------------------------

constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kMix2 = 0x94d049bb133111ebULL;
constexpr uint64_t kAccMul = 0x2545f4914f6cdd1dULL;

struct LaneHashArgs {
  const uint64_t* state;       // n suspended-stream state words (read-only).
  const uint64_t* acc;         // n suspended-stream accumulator words.
  const uint64_t* lane_words;  // Optional per-lane first word (nullptr = none).
  const uint64_t* const_words; // Shared words absorbed after lane_words.
  int num_const;
  uint64_t finish1;            // Word absorbed + finalized into out1.
  uint64_t* out1;
  uint64_t finish2;            // Ditto for out2 when out2 != nullptr.
  uint64_t* out2;
};

void HashLanesScalar(const LaneHashArgs& a, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    uint64_t s = a.state[k];
    uint64_t acc = a.acc[k];
    auto absorb = [&s, &acc](uint64_t w) {
      s ^= w;
      s += kGamma;
      uint64_t z = s;
      z = (z ^ (z >> 30)) * kMix1;
      z = (z ^ (z >> 27)) * kMix2;
      z ^= z >> 31;
      uint64_t x = acc ^ z;
      acc = ((x << 23) | (x >> 41)) * kAccMul;
    };
    if (a.lane_words != nullptr) absorb(a.lane_words[k]);
    for (int c = 0; c < a.num_const; ++c) absorb(a.const_words[c]);
    auto finish = [&s, &acc](uint64_t fw) {
      uint64_t fs = (s ^ fw) + kGamma;
      uint64_t z = fs;
      z = (z ^ (z >> 30)) * kMix1;
      z = (z ^ (z >> 27)) * kMix2;
      z ^= z >> 31;
      uint64_t x = acc ^ z;
      uint64_t fa = ((x << 23) | (x >> 41)) * kAccMul;
      uint64_t t = (fs ^ fa) + kGamma;
      t = (t ^ (t >> 30)) * kMix1;
      t = (t ^ (t >> 27)) * kMix2;
      return t ^ (t >> 31);
    };
    a.out1[k] = finish(a.finish1);
    if (a.out2 != nullptr) a.out2[k] = finish(a.finish2);
  }
}

// Suspended-prefix absorb: one shared suspended stream (state0, acc0), one
// per-lane word; emits the per-lane suspended streams instead of finalized
// hashes. Used for the per-frame word of the batch prefix, whose outputs
// seed the per-object lanes. Safe to run in place (out_state may alias
// words: each lane's word is read before its state is written).
void AbsorbSuspendScalar(uint64_t state0, uint64_t acc0, const uint64_t* words,
                         uint64_t* out_state, uint64_t* out_acc, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    uint64_t s = state0 ^ words[k];
    s += kGamma;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * kMix1;
    z = (z ^ (z >> 27)) * kMix2;
    z ^= z >> 31;
    const uint64_t x = acc0 ^ z;
    out_state[k] = s;
    out_acc[k] = ((x << 23) | (x >> 41)) * kAccMul;
  }
}

#ifdef SMK_KERNEL_X86

// GCC's AVX-512 intrinsic headers trip -Wmaybe-uninitialized through the
// _mm512_undefined_* helpers they expand to (GCC PR 105593); the values are
// fully written before use.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// AVX-512 variant: vpmullq (DQ) gives native 64-bit lane multiplies and
// vprolq (F) the accumulator rotate, so the whole chain stays integer and
// bit-identical. Helpers carry the same target attribute so they inline
// into the attributed loop (a plain lambda would not and GCC would refuse
// the call).
__attribute__((target("avx512f,avx512dq"), always_inline)) inline __m512i Mix512(__m512i z) {
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)), _mm512_set1_epi64(kMix1));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)), _mm512_set1_epi64(kMix2));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

__attribute__((target("avx512f,avx512dq"), always_inline)) inline __m512i Absorb512(
    __m512i* s, __m512i acc, __m512i w) {
  *s = _mm512_add_epi64(_mm512_xor_si512(*s, w), _mm512_set1_epi64(kGamma));
  __m512i x = _mm512_xor_si512(acc, Mix512(*s));
  return _mm512_mullo_epi64(_mm512_rol_epi64(x, 23), _mm512_set1_epi64(kAccMul));
}

__attribute__((target("avx512f,avx512dq"), always_inline)) inline __m512i Finish512(
    __m512i s, __m512i acc, uint64_t fw) {
  __m512i fs = _mm512_add_epi64(_mm512_xor_si512(s, _mm512_set1_epi64(fw)),
                                _mm512_set1_epi64(kGamma));
  __m512i x = _mm512_xor_si512(acc, Mix512(fs));
  __m512i fa = _mm512_mullo_epi64(_mm512_rol_epi64(x, 23), _mm512_set1_epi64(kAccMul));
  __m512i t = _mm512_add_epi64(_mm512_xor_si512(fs, fa), _mm512_set1_epi64(kGamma));
  return Mix512(t);
}

__attribute__((target("avx512f,avx512dq"))) void HashLanesAvx512(const LaneHashArgs& a,
                                                                 size_t n) {
  size_t k = 0;
  // Two independent 8-lane groups per iteration: one group's absorb round is
  // a serial multiply chain (Mix512 is two dependent vpmullq, each multi-uop
  // on current cores), so a single group leaves the multiply port idle most
  // cycles. Interleaving a second, dependency-free group overlaps the chains
  // and moves the loop from chain latency toward multiply throughput.
  for (; k + 16 <= n; k += 16) {
    __m512i s0 = _mm512_loadu_si512(a.state + k);
    __m512i s1 = _mm512_loadu_si512(a.state + k + 8);
    __m512i acc0 = _mm512_loadu_si512(a.acc + k);
    __m512i acc1 = _mm512_loadu_si512(a.acc + k + 8);
    if (a.lane_words != nullptr) {
      acc0 = Absorb512(&s0, acc0, _mm512_loadu_si512(a.lane_words + k));
      acc1 = Absorb512(&s1, acc1, _mm512_loadu_si512(a.lane_words + k + 8));
    }
    for (int c = 0; c < a.num_const; ++c) {
      const __m512i w = _mm512_set1_epi64(static_cast<int64_t>(a.const_words[c]));
      acc0 = Absorb512(&s0, acc0, w);
      acc1 = Absorb512(&s1, acc1, w);
    }
    _mm512_storeu_si512(a.out1 + k, Finish512(s0, acc0, a.finish1));
    _mm512_storeu_si512(a.out1 + k + 8, Finish512(s1, acc1, a.finish1));
    if (a.out2 != nullptr) {
      _mm512_storeu_si512(a.out2 + k, Finish512(s0, acc0, a.finish2));
      _mm512_storeu_si512(a.out2 + k + 8, Finish512(s1, acc1, a.finish2));
    }
  }
  for (; k + 8 <= n; k += 8) {
    __m512i s = _mm512_loadu_si512(a.state + k);
    __m512i acc = _mm512_loadu_si512(a.acc + k);
    if (a.lane_words != nullptr) {
      acc = Absorb512(&s, acc, _mm512_loadu_si512(a.lane_words + k));
    }
    for (int c = 0; c < a.num_const; ++c) {
      acc = Absorb512(&s, acc, _mm512_set1_epi64(static_cast<int64_t>(a.const_words[c])));
    }
    _mm512_storeu_si512(a.out1 + k, Finish512(s, acc, a.finish1));
    if (a.out2 != nullptr) _mm512_storeu_si512(a.out2 + k, Finish512(s, acc, a.finish2));
  }
  if (k < n) {
    LaneHashArgs tail = a;
    tail.state += k;
    tail.acc += k;
    if (tail.lane_words != nullptr) tail.lane_words += k;
    tail.out1 += k;
    if (tail.out2 != nullptr) tail.out2 += k;
    HashLanesScalar(tail, n - k);
  }
}

#pragma GCC diagnostic pop

#endif  // SMK_KERNEL_X86

// ---------------------------------------------------------------------------
// Lane-parallel first uniform of the seeded Poisson stream.
//
// PoissonFromHashKnuth seeds an Rng from the finalized hash and draws
// uniforms until the product falls below exp(-lambda). The FIRST uniform
// decides the overwhelmingly common count==0 case, and it depends only on
// xoshiro lane s1 = SplitMix64 mix of (hash + 2*gamma) — two multiplies —
// because NextUint64 reads s_[1] alone (and the all-zero reseed guard
// touches s_[0] only). Computing that first uniform for every frame in a
// flat pass turns the per-frame serial seed chain into lane-parallel work;
// pass 3 falls back to the full scalar draw only when the first uniform
// exceeds the limit (count >= 1).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Flat detect/duplicate decision pass.
//
// Once the hashes are finalized, each object's contribution to its frame's
// count is a pure function of flat columns: band thresholds on the detect
// draw (exact-sigmoid fallback inside the ambiguity window), plus the
// duplicate Bernoulli gated on detection. Evaluating it as a lane pass over
// ALL objects in the batch (rather than per frame inside the frame loop)
// exposes the same independence the hash lanes exploit — and on AVX-512 the
// band lookup becomes two 8-lane gathers and the decisions mask compares.
// The per-frame loop then just sums a contiguous run of contributions.
// ---------------------------------------------------------------------------

struct DetectContribArgs {
  const double* s_eff;
  const uint64_t* det_hash;
  const uint64_t* dup_hash;  // nullptr when no frame in the batch can duplicate.
  const double* dup_prob;    // Per-object duplicate probability (frame-broadcast).
  const uint64_t* sure_lo;   // Band tables incl. the sentinel at band_clamp.
  const uint64_t* sure_hi;
  double inv_band_width;
  uint64_t band_clamp;       // Sentinel band index (RecallBands::kBands).
  double s50, width, plateau;  // Exact fallback for ambiguity-window draws.
  bool banded;               // false => every decision takes the exact sigmoid.
  uint64_t* contrib;         // Out: detections contributed by each object (0..2).
};

void DetectContribScalar(const DetectContribArgs& a, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    const double s_eff = a.s_eff[k];
    const uint64_t h = a.det_hash[k] >> 11;
    unsigned det;
    if (a.banded) {
      // The unsigned clamp lands s_eff past the certainty edge in the
      // sentinel band, where recall == plateau bit for bit (see
      // BuildRecallBands); an out-of-range convert (overflowing product
      // maps to INT64_MIN) also routes to the sentinel, matching the
      // scalar path where exp underflows and recall == plateau.
      size_t b = static_cast<size_t>(static_cast<int64_t>(s_eff * a.inv_band_width));
      if (b > a.band_clamp) b = a.band_clamp;
      det = h < a.sure_lo[b] ? 1u : 0u;
      unsigned sure = det | (h >= a.sure_hi[b] ? 1u : 0u);
      PinFlag(det);
      PinFlag(sure);
      if (sure == 0) [[unlikely]] {
        det = ExactRecallDetect(s_eff, a.s50, a.width, a.plateau, h) ? 1u : 0u;
      }
    } else {
      det = ExactRecallDetect(s_eff, a.s50, a.width, a.plateau, h) ? 1u : 0u;
    }
    uint64_t c = det;
    if (a.dup_hash != nullptr) {
      // NMS failure: a detected object is reported twice. The draw is
      // stateless, so evaluating it for undetected objects (or frames with
      // zero duplicate probability) is side-effect-free; `det` gates the
      // add without a branch.
      const unsigned dup = stats::UniformFromHash(a.dup_hash[k]) < a.dup_prob[k] ? 1u : 0u;
      c += det & dup;
    }
    a.contrib[k] = c;
  }
}

void PoissonFirstU53Scalar(const uint64_t* hash, uint64_t* u53, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    uint64_t v = hash[k] + 2 * kGamma;
    v = (v ^ (v >> 30)) * kMix1;
    v = (v ^ (v >> 27)) * kMix2;
    const uint64_t s1 = v ^ (v >> 31);
    uint64_t r = s1 * 5;
    r = ((r << 7) | (r >> 57)) * 9;
    u53[k] = r >> 11;
  }
}

#ifdef SMK_KERNEL_X86

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f,avx512dq"))) void PoissonFirstU53Avx512(const uint64_t* hash,
                                                                       uint64_t* u53, size_t n) {
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m512i v = _mm512_add_epi64(_mm512_loadu_si512(hash + k),
                                 _mm512_set1_epi64(static_cast<int64_t>(2 * kGamma)));
    v = Mix512(v);
    // * 5 and * 9 as shift-adds: no 64-bit multiply needed.
    __m512i r = _mm512_add_epi64(v, _mm512_slli_epi64(v, 2));
    r = _mm512_rol_epi64(r, 7);
    r = _mm512_add_epi64(r, _mm512_slli_epi64(r, 3));
    _mm512_storeu_si512(u53 + k, _mm512_srli_epi64(r, 11));
  }
  if (k < n) PoissonFirstU53Scalar(hash + k, u53 + k, n - k);
}

// Banded decisions 8 lanes at a time: band index via the DQ truncating
// convert (overflow yields INT64_MIN, which the unsigned min routes to the
// sentinel exactly like the scalar cast), thresholds via two 64-bit
// gathers, detect/sure/duplicate as mask compares. Ambiguity-window lanes
// (almost never set) are patched through the same scalar exact fallback.
// Only called with a.banded == true.
__attribute__((target("avx512f,avx512dq"))) void DetectContribAvx512(const DetectContribArgs& a,
                                                                     size_t n) {
  const __m512d inv_bw = _mm512_set1_pd(a.inv_band_width);
  const __m512i clamp = _mm512_set1_epi64(static_cast<int64_t>(a.band_clamp));
  const __m512d scale53 = _mm512_set1_pd(0x1.0p-53);
  const __m512i one = _mm512_set1_epi64(1);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d s_eff = _mm512_loadu_pd(a.s_eff + k);
    const __m512i raw = _mm512_cvttpd_epi64(_mm512_mul_pd(s_eff, inv_bw));
    const __m512i b = _mm512_min_epu64(raw, clamp);
    const __m512i lo = _mm512_i64gather_epi64(b, a.sure_lo, 8);
    const __m512i hi = _mm512_i64gather_epi64(b, a.sure_hi, 8);
    const __m512i h = _mm512_srli_epi64(_mm512_loadu_si512(a.det_hash + k), 11);
    __mmask8 det_m = _mm512_cmp_epu64_mask(h, lo, _MM_CMPINT_LT);
    const __mmask8 miss_m = _mm512_cmp_epu64_mask(h, hi, _MM_CMPINT_NLT);
    unsigned amb = static_cast<unsigned>(static_cast<__mmask8>(~(det_m | miss_m)));
    if (amb != 0) [[unlikely]] {
      do {
        const int j = __builtin_ctz(amb);
        amb &= amb - 1;
        const size_t kk = k + static_cast<size_t>(j);
        if (ExactRecallDetect(a.s_eff[kk], a.s50, a.width, a.plateau, a.det_hash[kk] >> 11)) {
          det_m = static_cast<__mmask8>(det_m | (1u << j));
        }
      } while (amb != 0);
    }
    __m512i contrib = _mm512_maskz_mov_epi64(det_m, one);
    if (a.dup_hash != nullptr) {
      const __m512i dh = _mm512_srli_epi64(_mm512_loadu_si512(a.dup_hash + k), 11);
      const __m512d u = _mm512_mul_pd(_mm512_cvtepu64_pd(dh), scale53);
      const __mmask8 dup_m = _mm512_cmp_pd_mask(u, _mm512_loadu_pd(a.dup_prob + k), _CMP_LT_OQ);
      contrib = _mm512_add_epi64(
          contrib, _mm512_maskz_mov_epi64(static_cast<__mmask8>(det_m & dup_m), one));
    }
    _mm512_storeu_si512(a.contrib + k, contrib);
  }
  if (k < n) {
    DetectContribArgs tail = a;
    tail.s_eff += k;
    tail.det_hash += k;
    if (tail.dup_hash != nullptr) tail.dup_hash += k;
    tail.dup_prob += k;
    tail.contrib += k;
    DetectContribScalar(tail, n - k);
  }
}

__attribute__((target("avx512f,avx512dq"))) void AbsorbSuspendAvx512(
    uint64_t state0, uint64_t acc0, const uint64_t* words, uint64_t* out_state, uint64_t* out_acc,
    size_t n) {
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m512i s = _mm512_set1_epi64(static_cast<int64_t>(state0));
    __m512i acc = Absorb512(&s, _mm512_set1_epi64(static_cast<int64_t>(acc0)),
                            _mm512_loadu_si512(words + k));
    _mm512_storeu_si512(out_state + k, s);
    _mm512_storeu_si512(out_acc + k, acc);
  }
  if (k < n) AbsorbSuspendScalar(state0, acc0, words + k, out_state + k, out_acc + k, n - k);
}

#pragma GCC diagnostic pop

#endif  // SMK_KERNEL_X86

using HashLanesFn = void (*)(const LaneHashArgs&, size_t);

// Runtime dispatch: AVX-512 when the host has it, scalar otherwise — both
// bit-identical. SMOKESCREEN_NO_AVX512=1 forces the scalar lanes (useful
// for A/B measurement and for hosts where sustained 512-bit multiplies
// trigger license-based frequency reduction).
bool Avx512Disabled() {
  const char* env = std::getenv("SMOKESCREEN_NO_AVX512");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

HashLanesFn ResolveHashLanes() {
#ifdef SMK_KERNEL_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      !Avx512Disabled()) {
    return &HashLanesAvx512;
  }
#endif
  return &HashLanesScalar;
}

using PoissonFirstU53Fn = void (*)(const uint64_t*, uint64_t*, size_t);

PoissonFirstU53Fn ResolvePoissonFirstU53() {
#ifdef SMK_KERNEL_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      !Avx512Disabled()) {
    return &PoissonFirstU53Avx512;
  }
#endif
  return &PoissonFirstU53Scalar;
}

using DetectContribFn = void (*)(const DetectContribArgs&, size_t);

DetectContribFn ResolveDetectContrib() {
#ifdef SMK_KERNEL_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      !Avx512Disabled()) {
    return &DetectContribAvx512;
  }
#endif
  return &DetectContribScalar;
}

using AbsorbSuspendFn = void (*)(uint64_t, uint64_t, const uint64_t*, uint64_t*, uint64_t*,
                                 size_t);

AbsorbSuspendFn ResolveAbsorbSuspend() {
#ifdef SMK_KERNEL_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      !Avx512Disabled()) {
    return &AbsorbSuspendAvx512;
  }
#endif
  return &AbsorbSuspendScalar;
}

// Resolved once at load; all candidates are pure functions of their input.
const HashLanesFn kHashLanes = ResolveHashLanes();
const PoissonFirstU53Fn kPoissonFirstU53 = ResolvePoissonFirstU53();
const AbsorbSuspendFn kAbsorbSuspend = ResolveAbsorbSuspend();
const DetectContribFn kDetectContrib = ResolveDetectContrib();

// Reused per-thread buffers for the batch kernel (CountBatch is const and
// may run concurrently on pool workers; each thread grows its own scratch
// to the high-water batch shape once and then allocates nothing).
struct KernelScratch {
  std::vector<uint64_t> frame_state, frame_acc, fp_hash, fp_u53;
  std::vector<double> dup_prob;
  std::vector<uint64_t> obj_state, obj_acc, obj_track, det_hash, dup_hash, contrib;
  std::vector<double> s_eff, obj_dup_prob;
  std::vector<double> knuth_limits;
};

KernelScratch& LocalScratch() {
  static thread_local KernelScratch scratch;
  return scratch;
}

}  // namespace

CalibratedDetector::RecallBands CalibratedDetector::BuildRecallBands(
    const ClassCalibration& cal) {
  RecallBands bands;
  const double p = cal.plateau;
  const double s50 = cal.s50;
  const double w = cal.width;
  // The acceleration assumes the logistic is a proper S-curve with a
  // sub-unit plateau; anything else (zero-plateau classes, degenerate
  // widths, non-finite geometry) simply leaves `usable` false and the
  // kernel evaluates the exact sigmoid per object.
  if (!(p > 0.0) || !(p < 1.0) || !(w > 0.0)) return bands;
  const double s_certain = s50 + 38.0 * w;
  if (!std::isfinite(s_certain) || !(s_certain > 0.0)) return bands;
  // Beyond s_certain the computed logistic argument is <= -38 + rounding,
  // so exp(a) < 2^-53, 1.0 + exp(a) rounds to exactly 1.0, and the computed
  // recall equals the plateau bit for bit.
  bands.s_detect_certain = s_certain;
  bands.inv_band_width =
      static_cast<double>(RecallBands::kBands) / s_certain;
  // One sentinel band past the end: s_eff >= s_certain maps to index
  // kBands, where recall == plateau bit for bit, so both thresholds are the
  // exact integer form of "u < plateau" (plateau * 2^53 is a power-of-two
  // scaling, computed without rounding) and the decision is always sure.
  // This keeps the kernel's band pick a single clamped index — no separate
  // plateau branch.
  bands.sure_lo.resize(RecallBands::kBands + 1);
  bands.sure_hi.resize(RecallBands::kBands + 1);
  const uint64_t plateau_u = static_cast<uint64_t>(std::ceil(p * kTwo53));
  bands.sure_lo[RecallBands::kBands] = plateau_u;
  bands.sure_hi[RecallBands::kBands] = plateau_u;
  const double band = s_certain / static_cast<double>(RecallBands::kBands);
  for (int b = 0; b < RecallBands::kBands; ++b) {
    // Evaluate the sigmoid on a QUARTER-BAND-widened interval: float
    // rounding can park an s_eff a few ulps across a band edge, and the
    // slack (~0.25 band >> any rounding) guarantees the stored bounds still
    // cover its recall. Recall increases with s_eff, so the minimum sits at
    // the left edge.
    const double e_lo = (static_cast<double>(b) - 0.25) * band;
    const double e_hi = (static_cast<double>(b) + 1.25) * band;
    double r_min = p / (1.0 + std::exp(-(e_lo - s50) / w));
    double r_max = p / (1.0 + std::exp(-(e_hi - s50) / w));
    // Pad by 8 ulps per side: std::exp is faithfully rounded (not correctly
    // rounded), so the computed chain can wobble a few ulps off monotone.
    for (int k = 0; k < 8; ++k) r_min = std::nextafter(r_min, 0.0);
    for (int k = 0; k < 8; ++k) r_max = std::nextafter(r_max, 2.0);
    if (!(r_min > 0.0)) r_min = 0.0;
    // u < r_min certainly detects: h < floor(r_min * 2^53) implies
    // u = h/2^53 < r_min. u >= r_max certainly misses: h >= ceil(r_max *
    // 2^53) implies u >= r_max (and recall < 1 whenever r_max < 1; if the
    // padded bound reaches 1 the sure-miss test is disabled for the band).
    bands.sure_lo[static_cast<size_t>(b)] =
        static_cast<uint64_t>(std::floor(r_min * kTwo53));
    bands.sure_hi[static_cast<size_t>(b)] =
        r_max < 1.0 ? static_cast<uint64_t>(std::ceil(r_max * kTwo53))
                    : static_cast<uint64_t>(kTwo53);
  }
  bands.usable = true;
  return bands;
}

double CalibratedDetector::ObjectRecall(const GtObject& obj, int resolution,
                                        int reference_resolution, double contrast_scale) const {
  const ClassCalibration& cal = calibrations_[static_cast<size_t>(obj.cls)];
  double scale = static_cast<double>(resolution) / static_cast<double>(reference_resolution);
  double clarity = obj.contrast * contrast_scale;
  double s_eff = obj.apparent_size * scale * clarity;
  double recall = cal.plateau / (1.0 + std::exp(-(s_eff - cal.s50) / cal.width));
  return recall;
}

double CalibratedDetector::DuplicateProbability(const Frame& /*frame*/, int /*resolution*/,
                                                ObjectClass /*cls*/) const {
  return 0.0;
}

void CalibratedDetector::DuplicateProbabilityBatch(const VideoDataset& dataset,
                                                   std::span<const int64_t> frame_indices,
                                                   int resolution, ObjectClass cls,
                                                   std::span<double> out) const {
  for (size_t i = 0; i < frame_indices.size(); ++i) {
    out[i] = DuplicateProbability(dataset.frame(frame_indices[i]), resolution, cls);
  }
}

int CalibratedDetector::CountFrameImpl(const VideoDataset& dataset, const Frame& frame,
                                       int resolution, ObjectClass cls, double contrast_scale,
                                       const ClassCalibration& cal, uint64_t res_bits,
                                       uint64_t cls_bits, uint64_t contrast_bits,
                                       double res_factor) const {
  double dup_prob = DuplicateProbability(frame, resolution, cls);

  int count = 0;
  for (const GtObject& obj : frame.objects) {
    if (obj.cls != cls) continue;
    double recall = ObjectRecall(obj, resolution, dataset.full_resolution(), contrast_scale);
    bool detected = stats::StatelessBernoulli(
        recall, {dataset.dataset_id(), static_cast<uint64_t>(frame.frame_id),
                 static_cast<uint64_t>(obj.track_id), res_bits, model_id_, cls_bits,
                 contrast_bits, /*purpose=*/0x11});
    if (!detected) continue;
    ++count;
    if (dup_prob > 0.0 &&
        stats::StatelessBernoulli(
            dup_prob, {dataset.dataset_id(), static_cast<uint64_t>(frame.frame_id),
                       static_cast<uint64_t>(obj.track_id), res_bits, model_id_, cls_bits,
                       contrast_bits, /*purpose=*/0x22})) {
      ++count;  // NMS failure: the object is reported twice.
    }
  }

  // Clutter-driven false positives. Slightly elevated at reduced resolution
  // (small textures are more ambiguous), mildly elevated in crowded frames.
  double clutter_factor = 1.0 + 0.03 * static_cast<double>(frame.objects.size());
  double fp_lambda = cal.fp_rate * res_factor * clutter_factor;
  count += stats::StatelessPoisson(
      fp_lambda, {dataset.dataset_id(), static_cast<uint64_t>(frame.frame_id), res_bits,
                  model_id_, cls_bits, contrast_bits, /*purpose=*/0x33});
  return count;
}

Result<int> CalibratedDetector::CountDetections(const VideoDataset& dataset, int64_t frame_index,
                                                int resolution, ObjectClass cls,
                                                double contrast_scale) const {
  SMK_RETURN_IF_ERROR(ValidateResolution(resolution));
  if (frame_index < 0 || frame_index >= dataset.num_frames()) {
    return Status::OutOfRange("frame index " + std::to_string(frame_index) + " out of [0, " +
                              std::to_string(dataset.num_frames()) + ")");
  }
  const Frame& frame = dataset.frame(frame_index);
  const ClassCalibration& cal = calibrations_[static_cast<size_t>(cls)];
  const uint64_t res_bits = static_cast<uint64_t>(resolution);
  const uint64_t cls_bits = static_cast<uint64_t>(cls);
  const uint64_t contrast_bits =
      static_cast<uint64_t>(std::llround(contrast_scale * 4096.0));
  const double res_factor =
      1.0 + 0.5 * (1.0 - static_cast<double>(resolution) /
                             static_cast<double>(dataset.full_resolution()));
  return CountFrameImpl(dataset, frame, resolution, cls, contrast_scale, cal, res_bits,
                        cls_bits, contrast_bits, res_factor);
}

Status CalibratedDetector::CountBatch(const VideoDataset& dataset,
                                      std::span<const int64_t> frame_indices, int resolution,
                                      ObjectClass cls, double contrast_scale,
                                      std::span<int> out) const {
  if (out.size() != frame_indices.size()) {
    return Status::InvalidArgument("CountBatch: out size " + std::to_string(out.size()) +
                                   " != frame count " + std::to_string(frame_indices.size()));
  }
  // Validate the WHOLE request before writing anything: `out` stays
  // untouched on any error, never holding a partially written prefix.
  SMK_RETURN_IF_ERROR(ValidateResolution(resolution));
  for (int64_t frame_index : frame_indices) {
    if (frame_index < 0 || frame_index >= dataset.num_frames()) {
      return Status::OutOfRange("frame index " + std::to_string(frame_index) + " out of [0, " +
                                std::to_string(dataset.num_frames()) + ")");
    }
  }

  // All per-(resolution, class, contrast) constants become per-batch
  // scalars; nothing below this block is recomputed per frame or object.
  const video::SceneIndex& index = dataset.scene_index();
  const video::SceneIndex::ClassColumns& col = index.columns(cls);
  const ClassCalibration& cal = calibrations_[static_cast<size_t>(cls)];
  const uint64_t res_bits = static_cast<uint64_t>(resolution);
  const uint64_t cls_bits = static_cast<uint64_t>(cls);
  const uint64_t contrast_bits =
      static_cast<uint64_t>(std::llround(contrast_scale * 4096.0));
  const double res_factor =
      1.0 + 0.5 * (1.0 - static_cast<double>(resolution) /
                             static_cast<double>(dataset.full_resolution()));
  const double scale =
      static_cast<double>(resolution) / static_cast<double>(dataset.full_resolution());
  const double s50 = cal.s50;
  const double width = cal.width;
  const double plateau = cal.plateau;
  // The recall logistic is positive everywhere, so detection Bernoullis can
  // succeed iff the plateau is positive; a zero-plateau class (e.g. MTCNN on
  // cars) skips the object walk entirely — exactly the draws the scalar
  // path's p <= 0 short-circuit never makes.
  const bool class_detectable = plateau > 0.0;
  std::span<const uint32_t> total_objects = index.total_objects();

  // Guard-banded recall decision setup (see RecallBands): most Bernoullis
  // resolve from two integer threshold loads (the sentinel band at index
  // kBands carries the exact plateau decision for s_eff past the certainty
  // edge); only draws inside a band's ambiguity window evaluate the exact
  // sigmoid.
  const RecallBands& bands = recall_bands_[static_cast<size_t>(cls)];
  const bool use_bands = bands.usable;
  const double inv_band_width = bands.inv_band_width;
  const uint64_t* sure_lo = bands.sure_lo.data();
  const uint64_t* sure_hi = bands.sure_hi.data();

  // The determinism stream absorbs (dataset, frame, [track,] res, model,
  // cls, contrast, purpose) in that order: the dataset word is absorbed once
  // per batch, the frame word once per frame, and the per-draw tails resume
  // from the suspended per-frame (state, acc) pair. The detect and
  // duplicate draws share their first five tail words (track, res, model,
  // cls, contrast), so the lane pass absorbs that prefix ONCE per object
  // and finishes it twice (purpose 0x11 / 0x22) — the scalar path pays the
  // full chain twice.
  stats::HashStream batch_stream;
  batch_stream.Absorb(dataset.dataset_id());
  const uint64_t batch_state = batch_stream.state();
  const uint64_t batch_acc = batch_stream.acc();
  const uint64_t tail_words[4] = {res_bits, model_id_, cls_bits, contrast_bits};

  const size_t n = frame_indices.size();
  KernelScratch& scratch = LocalScratch();

  // Pass 1 (per frame, scalar): duplicate probabilities via the batched
  // model hook (one virtual call per batch, not per frame), suspended
  // streams after the frame word, and the flat per-object lane fill:
  // stream copies, track words, and the effective size (same
  // multiplication order as ObjectRecall, so the doubles match bit for
  // bit). The pass reads only the scene index's flat columns — never the
  // vector-bearing AoS Frame structs.
  scratch.frame_state.resize(n);
  scratch.frame_acc.resize(n);
  scratch.dup_prob.resize(n);
  DuplicateProbabilityBatch(dataset, frame_indices, resolution, cls,
                            std::span<double>(scratch.dup_prob.data(), n));
  bool any_dup = false;
  for (size_t i = 0; i < n; ++i) any_dup = any_dup || scratch.dup_prob[i] > 0.0;
  size_t total_objs = 0;
  if (class_detectable) {
    for (size_t i = 0; i < n; ++i) {
      const size_t f = static_cast<size_t>(frame_indices[i]);
      total_objs += col.offsets[f + 1] - col.offsets[f];
    }
    scratch.obj_state.resize(total_objs);
    scratch.obj_acc.resize(total_objs);
    scratch.obj_track.resize(total_objs);
    scratch.s_eff.resize(total_objs);
    scratch.obj_dup_prob.resize(total_objs);
  }
  const double* sizes = col.sizes.data();
  const double* contrasts = col.contrasts.data();
  const uint64_t* tracks = col.track_words.data();
  const uint64_t* frame_id_words = index.frame_id_words().data();
  // The per-frame prefix word absorbs lane-parallel: gather each frame's id
  // word into the state array, then one in-place suspended absorb replaces n
  // serial three-multiply chains.
  for (size_t i = 0; i < n; ++i) {
    scratch.frame_state[i] = frame_id_words[static_cast<size_t>(frame_indices[i])];
  }
  kAbsorbSuspend(batch_state, batch_acc, scratch.frame_state.data(), scratch.frame_state.data(),
                 scratch.frame_acc.data(), n);
  size_t k = 0;
  if (class_detectable) {
    const uint64_t* fs = scratch.frame_state.data();
    const uint64_t* fa = scratch.frame_acc.data();
    const double* dup_prob_col = scratch.dup_prob.data();
    for (size_t i = 0; i < n; ++i) {
      const size_t f = static_cast<size_t>(frame_indices[i]);
      const uint32_t lo = col.offsets[f];
      const uint32_t hi = col.offsets[f + 1];
      const uint64_t s = fs[i];
      const uint64_t a = fa[i];
      const double dp = dup_prob_col[i];
      for (uint32_t j = lo; j < hi; ++j, ++k) {
        scratch.obj_state[k] = s;
        scratch.obj_acc[k] = a;
        scratch.obj_track[k] = tracks[j];
        const double clarity = contrasts[j] * contrast_scale;
        scratch.s_eff[k] = sizes[j] * scale * clarity;
        scratch.obj_dup_prob[k] = dp;
      }
    }
  }

  // Pass 2 (flat lanes): one finalized hash per draw. Object lanes absorb
  // (track, res, model, cls, contrast) and finish with 0x11 (detect) and —
  // only when some frame can duplicate — 0x22. Frame lanes absorb
  // (res, model, cls, contrast) and finish with 0x33 (false positives).
  if (class_detectable && total_objs > 0) {
    scratch.det_hash.resize(total_objs);
    if (any_dup) scratch.dup_hash.resize(total_objs);
    LaneHashArgs obj_args;
    obj_args.state = scratch.obj_state.data();
    obj_args.acc = scratch.obj_acc.data();
    obj_args.lane_words = scratch.obj_track.data();
    obj_args.const_words = tail_words;
    obj_args.num_const = 4;
    obj_args.finish1 = 0x11;
    obj_args.out1 = scratch.det_hash.data();
    obj_args.finish2 = 0x22;
    obj_args.out2 = any_dup ? scratch.dup_hash.data() : nullptr;
    kHashLanes(obj_args, total_objs);
  }
  scratch.fp_hash.resize(n);
  {
    LaneHashArgs fp_args;
    fp_args.state = scratch.frame_state.data();
    fp_args.acc = scratch.frame_acc.data();
    fp_args.lane_words = nullptr;
    fp_args.const_words = tail_words;
    fp_args.num_const = 4;
    fp_args.finish1 = 0x33;
    fp_args.out1 = scratch.fp_hash.data();
    fp_args.finish2 = 0;
    fp_args.out2 = nullptr;
    kHashLanes(fp_args, n);
  }
  // Lane-parallel first Poisson uniform (see PoissonFirstU53Scalar): pass 3
  // resolves the common count==0 draw from one double compare and reseeds
  // the full generator only for frames that actually produce a false
  // positive. fp_lambda > 0 iff fp_rate > 0 (res_factor and the clutter
  // factor are both positive), so a zero-rate class skips the pass.
  const bool any_fp = cal.fp_rate * res_factor > 0.0;
  if (any_fp) {
    scratch.fp_u53.resize(n);
    kPoissonFirstU53(scratch.fp_hash.data(), scratch.fp_u53.data(), n);
  }

  // Pass 2b (flat lanes): each object's contribution to its frame's count —
  // banded detect decision (exact-sigmoid fallback in the ambiguity window)
  // plus the detection-gated duplicate Bernoulli — evaluated over the whole
  // batch's object columns at once. See DetectContribScalar/Avx512.
  if (class_detectable && total_objs > 0) {
    scratch.contrib.resize(total_objs);
    DetectContribArgs cargs;
    cargs.s_eff = scratch.s_eff.data();
    cargs.det_hash = scratch.det_hash.data();
    cargs.dup_hash = any_dup ? scratch.dup_hash.data() : nullptr;
    cargs.dup_prob = scratch.obj_dup_prob.data();
    cargs.sure_lo = sure_lo;
    cargs.sure_hi = sure_hi;
    cargs.inv_band_width = inv_band_width;
    cargs.band_clamp = static_cast<uint64_t>(RecallBands::kBands);
    cargs.s50 = s50;
    cargs.width = width;
    cargs.plateau = plateau;
    cargs.banded = use_bands;
    cargs.contrib = scratch.contrib.data();
    // The vector kernel implements only the banded fast path; a class whose
    // band table is unusable takes the scalar exact loop on any ISA.
    (use_bands ? kDetectContrib : &DetectContribScalar)(cargs, total_objs);
  }

  // Knuth-limit memo for the false-positive Poisson: fp_lambda is a pure
  // function of the frame's total object count within one batch, so
  // exp(-lambda) is computed once per distinct count instead of per frame.
  scratch.knuth_limits.clear();

  // Pass 3 (per frame, scalar): sum the frame's contiguous run of object
  // contributions, then the false-positive draw.
  k = 0;
  // Local pointers keep the hot loop free of thread-local address
  // recomputation (the scratch reference is TLS-backed, and the compiler
  // re-derives its data pointers after any opaque call otherwise).
  const uint64_t* contrib_col = scratch.contrib.data();
  const uint64_t* fp_hash_col = scratch.fp_hash.data();
  const uint64_t* fp_u53_col = scratch.fp_u53.data();
  for (size_t i = 0; i < n; ++i) {
    const int64_t frame_index = frame_indices[i];
    int count = 0;
    if (class_detectable) {
      const size_t f = static_cast<size_t>(frame_index);
      const size_t num_objs = col.offsets[f + 1] - col.offsets[f];
      uint64_t c = 0;
      for (const size_t end = k + num_objs; k < end; ++k) c += contrib_col[k];
      count = static_cast<int>(c);
    }

    // Clutter-driven false positives, identical to the scalar path: the
    // clutter statistic counts objects of ALL classes (read from the index's
    // per-frame totals, not the queried column).
    const uint32_t total = total_objects[static_cast<size_t>(frame_index)];
    const double clutter_factor = 1.0 + 0.03 * static_cast<double>(total);
    const double fp_lambda = cal.fp_rate * res_factor * clutter_factor;
    if (fp_lambda > 0.0) {
      const uint64_t fp_hash = fp_hash_col[i];
      if (fp_lambda < 30.0) {
        if (scratch.knuth_limits.size() <= total) scratch.knuth_limits.resize(total + 1, -1.0);
        double limit = scratch.knuth_limits[total];
        if (limit < 0.0) {
          limit = std::exp(-fp_lambda);
          scratch.knuth_limits[total] = limit;
        }
        // First uniform precomputed lane-parallel: prod <= limit means the
        // Knuth loop body never runs and the draw is 0. Only a frame that
        // actually emits a false positive reseeds the full generator (the
        // recompute repeats the first draw, which is identical by
        // construction).
        const double first_u = static_cast<double>(fp_u53_col[i]) * 0x1.0p-53;
        if (first_u > limit) [[unlikely]] {
          count += stats::PoissonFromHashKnuth(limit, fp_hash);
        }
      } else {
        count += stats::PoissonFromHash(fp_lambda, fp_hash);
      }
    }
    out[i] = count;
  }
  return Status::OK();
}

}  // namespace detect
}  // namespace smokescreen
