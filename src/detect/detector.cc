#include "detect/detector.h"

#include <cmath>

#include "stats/rng.h"

namespace smokescreen {
namespace detect {

using util::Result;
using util::Status;
using video::Frame;
using video::GtObject;
using video::ObjectClass;
using video::VideoDataset;

Status Detector::CountBatch(const VideoDataset& dataset, std::span<const int64_t> frame_indices,
                            int resolution, ObjectClass cls, double contrast_scale,
                            std::span<int> out) const {
  if (out.size() != frame_indices.size()) {
    return Status::InvalidArgument("CountBatch: out size " + std::to_string(out.size()) +
                                   " != frame count " + std::to_string(frame_indices.size()));
  }
  for (size_t i = 0; i < frame_indices.size(); ++i) {
    SMK_ASSIGN_OR_RETURN(out[i], CountDetections(dataset, frame_indices[i], resolution, cls,
                                                 contrast_scale));
  }
  return Status::OK();
}

Status Detector::ValidateResolution(int resolution) const {
  if (resolution <= 0) return Status::InvalidArgument("resolution must be positive");
  if (resolution > max_resolution()) {
    return Status::InvalidArgument(name() + " supports at most " +
                                   std::to_string(max_resolution()) + "px, got " +
                                   std::to_string(resolution));
  }
  if (resolution % resolution_stride() != 0) {
    return Status::InvalidArgument(name() + " requires resolutions in multiples of " +
                                   std::to_string(resolution_stride()) + ", got " +
                                   std::to_string(resolution));
  }
  return Status::OK();
}

CalibratedDetector::CalibratedDetector(
    std::string name, uint64_t model_id, int max_resolution, int resolution_stride,
    std::array<ClassCalibration, video::kNumObjectClasses> calibrations)
    : name_(std::move(name)),
      model_id_(model_id),
      max_resolution_(max_resolution),
      resolution_stride_(resolution_stride),
      calibrations_(calibrations) {}

double CalibratedDetector::ObjectRecall(const GtObject& obj, int resolution,
                                        int reference_resolution, double contrast_scale) const {
  const ClassCalibration& cal = calibrations_[static_cast<size_t>(obj.cls)];
  double scale = static_cast<double>(resolution) / static_cast<double>(reference_resolution);
  double clarity = obj.contrast * contrast_scale;
  double s_eff = obj.apparent_size * scale * clarity;
  double recall = cal.plateau / (1.0 + std::exp(-(s_eff - cal.s50) / cal.width));
  return recall;
}

double CalibratedDetector::DuplicateProbability(const Frame& /*frame*/, int /*resolution*/,
                                                ObjectClass /*cls*/) const {
  return 0.0;
}

int CalibratedDetector::CountFrameImpl(const VideoDataset& dataset, const Frame& frame,
                                       int resolution, ObjectClass cls, double contrast_scale,
                                       const ClassCalibration& cal, uint64_t res_bits,
                                       uint64_t cls_bits, uint64_t contrast_bits,
                                       double res_factor) const {
  double dup_prob = DuplicateProbability(frame, resolution, cls);

  int count = 0;
  for (const GtObject& obj : frame.objects) {
    if (obj.cls != cls) continue;
    double recall = ObjectRecall(obj, resolution, dataset.full_resolution(), contrast_scale);
    bool detected = stats::StatelessBernoulli(
        recall, {dataset.dataset_id(), static_cast<uint64_t>(frame.frame_id),
                 static_cast<uint64_t>(obj.track_id), res_bits, model_id_, cls_bits,
                 contrast_bits, /*purpose=*/0x11});
    if (!detected) continue;
    ++count;
    if (dup_prob > 0.0 &&
        stats::StatelessBernoulli(
            dup_prob, {dataset.dataset_id(), static_cast<uint64_t>(frame.frame_id),
                       static_cast<uint64_t>(obj.track_id), res_bits, model_id_, cls_bits,
                       contrast_bits, /*purpose=*/0x22})) {
      ++count;  // NMS failure: the object is reported twice.
    }
  }

  // Clutter-driven false positives. Slightly elevated at reduced resolution
  // (small textures are more ambiguous), mildly elevated in crowded frames.
  double clutter_factor = 1.0 + 0.03 * static_cast<double>(frame.objects.size());
  double fp_lambda = cal.fp_rate * res_factor * clutter_factor;
  count += stats::StatelessPoisson(
      fp_lambda, {dataset.dataset_id(), static_cast<uint64_t>(frame.frame_id), res_bits,
                  model_id_, cls_bits, contrast_bits, /*purpose=*/0x33});
  return count;
}

Result<int> CalibratedDetector::CountDetections(const VideoDataset& dataset, int64_t frame_index,
                                                int resolution, ObjectClass cls,
                                                double contrast_scale) const {
  SMK_RETURN_IF_ERROR(ValidateResolution(resolution));
  if (frame_index < 0 || frame_index >= dataset.num_frames()) {
    return Status::OutOfRange("frame index " + std::to_string(frame_index) + " out of [0, " +
                              std::to_string(dataset.num_frames()) + ")");
  }
  const Frame& frame = dataset.frame(frame_index);
  const ClassCalibration& cal = calibrations_[static_cast<size_t>(cls)];
  const uint64_t res_bits = static_cast<uint64_t>(resolution);
  const uint64_t cls_bits = static_cast<uint64_t>(cls);
  const uint64_t contrast_bits =
      static_cast<uint64_t>(std::llround(contrast_scale * 4096.0));
  const double res_factor =
      1.0 + 0.5 * (1.0 - static_cast<double>(resolution) /
                             static_cast<double>(dataset.full_resolution()));
  return CountFrameImpl(dataset, frame, resolution, cls, contrast_scale, cal, res_bits,
                        cls_bits, contrast_bits, res_factor);
}

Status CalibratedDetector::CountBatch(const VideoDataset& dataset,
                                      std::span<const int64_t> frame_indices, int resolution,
                                      ObjectClass cls, double contrast_scale,
                                      std::span<int> out) const {
  if (out.size() != frame_indices.size()) {
    return Status::InvalidArgument("CountBatch: out size " + std::to_string(out.size()) +
                                   " != frame count " + std::to_string(frame_indices.size()));
  }
  // Frame-independent setup is hoisted out of the loop: resolution
  // validation, calibration lookup and the constant words of the stateless
  // hash stream are computed once per batch instead of once per frame.
  SMK_RETURN_IF_ERROR(ValidateResolution(resolution));
  const ClassCalibration& cal = calibrations_[static_cast<size_t>(cls)];
  const uint64_t res_bits = static_cast<uint64_t>(resolution);
  const uint64_t cls_bits = static_cast<uint64_t>(cls);
  const uint64_t contrast_bits =
      static_cast<uint64_t>(std::llround(contrast_scale * 4096.0));
  const double res_factor =
      1.0 + 0.5 * (1.0 - static_cast<double>(resolution) /
                             static_cast<double>(dataset.full_resolution()));
  for (size_t i = 0; i < frame_indices.size(); ++i) {
    const int64_t frame_index = frame_indices[i];
    if (frame_index < 0 || frame_index >= dataset.num_frames()) {
      return Status::OutOfRange("frame index " + std::to_string(frame_index) + " out of [0, " +
                                std::to_string(dataset.num_frames()) + ")");
    }
    out[i] = CountFrameImpl(dataset, dataset.frame(frame_index), resolution, cls,
                            contrast_scale, cal, res_bits, cls_bits, contrast_bits, res_factor);
  }
  return Status::OK();
}

}  // namespace detect
}  // namespace smokescreen
