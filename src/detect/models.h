// Concrete simulated detectors standing in for the paper's built-in models:
// YOLOv4 (Darknet), Mask R-CNN (Keras/TF), and MTCNN (face detection).
//
// Calibrations are chosen so that at each model's maximum resolution the
// detected class-containment fractions land near the paper's reported priors
// (person 14.18% / face 4.02% on night-street; 65.86% / 2.48% on UA-DETRAC),
// and so that recall decays through the paper's resolution sweep range.

#ifndef SMOKESCREEN_DETECT_MODELS_H_
#define SMOKESCREEN_DETECT_MODELS_H_

#include <memory>

#include "detect/detector.h"

namespace smokescreen {
namespace detect {

/// YOLOv4 analogue: 608x608 max input, stride-32 resolutions, detection
/// threshold 0.7. Carries the paper's Figure 7/8 anomaly — on low-light
/// scenes, inference near 384x384 suffers an anchor-aliasing NMS failure that
/// duplicates a large share of car detections, so its output distribution
/// deviates from the truth far more than at the *lower* resolution 320x320.
class SimYoloV4 : public CalibratedDetector {
 public:
  SimYoloV4();

 protected:
  double DuplicateProbability(const video::Frame& frame, int resolution,
                              video::ObjectClass cls) const override;

  /// Batch form: the bump is one resolution-dependent probability gated per
  /// frame on scene contrast, so the loop reads the scene index's flat
  /// contrast column with everything else hoisted. Value-identical to the
  /// per-frame virtual.
  void DuplicateProbabilityBatch(const video::VideoDataset& dataset,
                                 std::span<const int64_t> frame_indices, int resolution,
                                 video::ObjectClass cls, std::span<double> out) const override;

 private:
  /// The anomaly bump depends on resolution only (the frame and class just
  /// gate it on/off), so the std::exp is evaluated once per valid stride-32
  /// resolution at construction instead of once per frame in every counting
  /// loop. dup_by_resolution_[r/32 - 1] == DuplicateBump(r), bit-identically
  /// (same arithmetic, run at build time).
  std::array<double, 19> dup_by_resolution_{};
};

/// Mask R-CNN analogue: 640x640 max input; the default structure only
/// handles resolutions in multiples of 64 (as the paper notes). Slightly
/// better small-object recall than the YOLO analogue.
class SimMaskRcnn : public CalibratedDetector {
 public:
  SimMaskRcnn();
};

/// SSD-MobileNet analogue (extension beyond the paper's two models): an
/// edge-class detector — smaller maximum input (512), markedly worse
/// small-object recall, lower plateau. Lets experiments ask how the paper's
/// profiles depend on the CHOICE of model, not just its resolution knob.
class SimSsd : public CalibratedDetector {
 public:
  SimSsd();
};

/// MTCNN analogue: face-only detector, threshold 0.8; used to precompute the
/// restricted-class prior. Returns zero for non-face classes.
class SimMtcnn : public CalibratedDetector {
 public:
  SimMtcnn();

  util::Result<int> CountDetections(const video::VideoDataset& dataset, int64_t frame_index,
                                    int resolution, video::ObjectClass cls,
                                    double contrast_scale) const override;

  util::Status CountBatch(const video::VideoDataset& dataset,
                          std::span<const int64_t> frame_indices, int resolution,
                          video::ObjectClass cls, double contrast_scale,
                          std::span<int> out) const override;
};

std::unique_ptr<Detector> MakeSimYoloV4();
std::unique_ptr<Detector> MakeSimSsd();
std::unique_ptr<Detector> MakeSimMaskRcnn();
std::unique_ptr<Detector> MakeSimMtcnn();

}  // namespace detect
}  // namespace smokescreen

#endif  // SMOKESCREEN_DETECT_MODELS_H_
