#include "detect/models.h"

#include <algorithm>
#include <cmath>

namespace smokescreen {
namespace detect {

using video::ObjectClass;

namespace {

constexpr uint64_t kYoloModelId = 0x704c04;     // "YOLOv4"
constexpr uint64_t kMaskRcnnModelId = 0x3a58;   // "MaskR"
constexpr uint64_t kMtcnnModelId = 0x37c44;     // "MTCNN"
constexpr uint64_t kSsdModelId = 0x55d;         // "SSD"

// Index helpers: calibrations are indexed by ObjectClass value.
std::array<ClassCalibration, video::kNumObjectClasses> YoloCalibrations() {
  std::array<ClassCalibration, video::kNumObjectClasses> cal{};
  cal[static_cast<size_t>(ObjectClass::kCar)] = {/*s50=*/12.0, /*width=*/3.2, /*plateau=*/0.975,
                                                 /*fp_rate=*/0.02};
  cal[static_cast<size_t>(ObjectClass::kPerson)] = {14.0, 4.0, 0.96, 0.01};
  cal[static_cast<size_t>(ObjectClass::kFace)] = {9.0, 2.5, 0.80, 0.003};
  return cal;
}

std::array<ClassCalibration, video::kNumObjectClasses> MaskRcnnCalibrations() {
  std::array<ClassCalibration, video::kNumObjectClasses> cal{};
  cal[static_cast<size_t>(ObjectClass::kCar)] = {9.0, 3.5, 0.985, 0.035};
  cal[static_cast<size_t>(ObjectClass::kPerson)] = {11.0, 3.8, 0.97, 0.015};
  cal[static_cast<size_t>(ObjectClass::kFace)] = {8.0, 2.5, 0.85, 0.004};
  return cal;
}

std::array<ClassCalibration, video::kNumObjectClasses> SsdCalibrations() {
  std::array<ClassCalibration, video::kNumObjectClasses> cal{};
  // Edge-class model: misses small objects much earlier than YOLO.
  cal[static_cast<size_t>(ObjectClass::kCar)] = {18.0, 5.0, 0.93, 0.03};
  cal[static_cast<size_t>(ObjectClass::kPerson)] = {20.0, 5.5, 0.90, 0.015};
  cal[static_cast<size_t>(ObjectClass::kFace)] = {14.0, 4.0, 0.60, 0.004};
  return cal;
}

std::array<ClassCalibration, video::kNumObjectClasses> MtcnnCalibrations() {
  std::array<ClassCalibration, video::kNumObjectClasses> cal{};
  // Face-only model: car/person plateaus are zero.
  cal[static_cast<size_t>(ObjectClass::kCar)] = {1e9, 1.0, 0.0, 0.0};
  cal[static_cast<size_t>(ObjectClass::kPerson)] = {1e9, 1.0, 0.0, 0.0};
  cal[static_cast<size_t>(ObjectClass::kFace)] = {4.2, 1.3, 0.92, 0.002};
  return cal;
}

}  // namespace

namespace {

// Figure 7/8 anomaly bump: anchor-grid aliasing near 384px defeats NMS, so
// many cars are reported twice. The bump is narrow enough that 320px and
// 448px behave normally. Pure function of resolution; shared by the
// constructor's table build and the odd-resolution fallback so both produce
// the same doubles.
double YoloDuplicateBump(int resolution) {
  constexpr double kCenter = 384.0;
  constexpr double kSigma = 18.0;
  constexpr double kAmplitude = 0.7;
  double d = (static_cast<double>(resolution) - kCenter) / kSigma;
  double p = kAmplitude * std::exp(-0.5 * d * d);
  return p < 1e-4 ? 0.0 : p;
}

}  // namespace

SimYoloV4::SimYoloV4()
    : CalibratedDetector("SimYoloV4", kYoloModelId, /*max_resolution=*/608,
                         /*resolution_stride=*/32, YoloCalibrations()) {
  for (int i = 0; i < static_cast<int>(dup_by_resolution_.size()); ++i) {
    dup_by_resolution_[static_cast<size_t>(i)] = YoloDuplicateBump(32 * (i + 1));
  }
}

double SimYoloV4::DuplicateProbability(const video::Frame& frame, int resolution,
                                       ObjectClass cls) const {
  if (cls != ObjectClass::kCar) return 0.0;
  if (frame.scene_contrast >= 0.65) return 0.0;  // Daytime scenes unaffected.
  const int idx = resolution / 32;
  if (resolution % 32 == 0 && idx >= 1 && idx <= static_cast<int>(dup_by_resolution_.size())) {
    return dup_by_resolution_[static_cast<size_t>(idx - 1)];
  }
  return YoloDuplicateBump(resolution);  // Off-stride resolution (tests only).
}

void SimYoloV4::DuplicateProbabilityBatch(const video::VideoDataset& dataset,
                                          std::span<const int64_t> frame_indices, int resolution,
                                          video::ObjectClass cls, std::span<double> out) const {
  // Same decision tree as the per-frame virtual with the frame-independent
  // parts hoisted: the resolution bump is one double, and only the
  // scene-contrast gate varies per frame (read from the index's flat
  // column).
  double p = 0.0;
  if (cls == ObjectClass::kCar) {
    const int idx = resolution / 32;
    p = (resolution % 32 == 0 && idx >= 1 && idx <= static_cast<int>(dup_by_resolution_.size()))
            ? dup_by_resolution_[static_cast<size_t>(idx - 1)]
            : YoloDuplicateBump(resolution);
  }
  if (p == 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const std::span<const double> scene = dataset.scene_index().scene_contrasts();
  for (size_t i = 0; i < frame_indices.size(); ++i) {
    out[i] = scene[static_cast<size_t>(frame_indices[i])] >= 0.65 ? 0.0 : p;
  }
}

SimMaskRcnn::SimMaskRcnn()
    : CalibratedDetector("SimMaskRcnn", kMaskRcnnModelId, /*max_resolution=*/640,
                         /*resolution_stride=*/64, MaskRcnnCalibrations()) {}

SimSsd::SimSsd()
    : CalibratedDetector("SimSsd", kSsdModelId, /*max_resolution=*/512,
                         /*resolution_stride=*/32, SsdCalibrations()) {}

SimMtcnn::SimMtcnn()
    : CalibratedDetector("SimMtcnn", kMtcnnModelId, /*max_resolution=*/640,
                         /*resolution_stride=*/16, MtcnnCalibrations()) {}

util::Result<int> SimMtcnn::CountDetections(const video::VideoDataset& dataset,
                                            int64_t frame_index, int resolution,
                                            ObjectClass cls, double contrast_scale) const {
  if (cls != ObjectClass::kFace) return 0;  // Face-only model.
  return CalibratedDetector::CountDetections(dataset, frame_index, resolution, cls,
                                             contrast_scale);
}

util::Status SimMtcnn::CountBatch(const video::VideoDataset& dataset,
                                  std::span<const int64_t> frame_indices, int resolution,
                                  ObjectClass cls, double contrast_scale,
                                  std::span<int> out) const {
  if (cls != ObjectClass::kFace) {  // Face-only model.
    if (out.size() != frame_indices.size()) {
      return util::Status::InvalidArgument("CountBatch: out size mismatch");
    }
    std::fill(out.begin(), out.end(), 0);
    return util::Status::OK();
  }
  return CalibratedDetector::CountBatch(dataset, frame_indices, resolution, cls, contrast_scale,
                                        out);
}

std::unique_ptr<Detector> MakeSimYoloV4() { return std::make_unique<SimYoloV4>(); }
std::unique_ptr<Detector> MakeSimSsd() { return std::make_unique<SimSsd>(); }
std::unique_ptr<Detector> MakeSimMaskRcnn() { return std::make_unique<SimMaskRcnn>(); }
std::unique_ptr<Detector> MakeSimMtcnn() { return std::make_unique<SimMtcnn>(); }

}  // namespace detect
}  // namespace smokescreen
