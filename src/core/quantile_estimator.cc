#include "core/quantile_estimator.h"

#include <algorithm>
#include <cmath>

#include "stats/empirical.h"
#include "stats/hypergeometric.h"
#include "stats/normal.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

Result<Estimate> SmokescreenQuantileEstimator::EstimateQuantile(std::span<const double> sample,
                                                                int64_t population, double r,
                                                                bool is_max,
                                                                double delta) const {
  std::vector<double> scratch;
  return EstimateQuantileWithScratch(sample, population, r, is_max, delta, scratch);
}

Result<Estimate> SmokescreenQuantileEstimator::EstimateQuantileWithScratch(
    std::span<const double> sample, int64_t population, double r, bool is_max, double delta,
    std::vector<double>& scratch) const {
  if (sample.empty()) return Status::InvalidArgument("empty sample");
  if (population < static_cast<int64_t>(sample.size())) {
    return Status::InvalidArgument("population smaller than sample");
  }
  if (r <= 0.0 || r >= 1.0) return Status::InvalidArgument("quantile r must be in (0,1)");
  if (delta <= 0.0 || delta >= 1.0) return Status::InvalidArgument("delta must be in (0,1)");

  SMK_ASSIGN_OR_RETURN(stats::EmpiricalDistribution dist,
                       stats::EmpiricalDistribution::Create(sample, scratch));
  int64_t k_hat = dist.QuantileIndex(r);
  Estimate est;
  est.y_approx = dist.DistinctValue(k_hat);
  double f_hat = dist.Frequency(k_hat);  // Estimates F_k and the min/max frequency terms.

  double z = stats::ZScoreUpperTail(delta / 2.0);
  double fpc = stats::FinitePopulationFactor(population, static_cast<int64_t>(sample.size()));

  double variance_freq = is_max ? r * (1.0 - r)
                                : std::max(0.0, (r + f_hat) * (1.0 - (r + f_hat)));
  double deviation = z * std::sqrt(variance_freq) * fpc;
  est.err_b = ((deviation + f_hat) / f_hat + 1.0) * f_hat / r;
  return est;
}

}  // namespace core
}  // namespace smokescreen
