// Profile persistence: administrators generate profiles once (the expensive,
// model-bound stage) and share/revisit them later when choosing tradeoffs —
// including transferring a profile computed on a similar, less sensitive
// video (§3.3.1). The format is a commented CSV: human-inspectable and
// trivially plottable.

#ifndef SMOKESCREEN_CORE_PROFILE_IO_H_
#define SMOKESCREEN_CORE_PROFILE_IO_H_

#include <string>

#include "core/profiler.h"
#include "util/status.h"

namespace smokescreen {
namespace core {

/// Writes the profile to `path`. Overwrites.
util::Status SaveProfile(const Profile& profile, const std::string& path);

/// Reads a profile previously written by SaveProfile.
util::Result<Profile> LoadProfile(const std::string& path);

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_PROFILE_IO_H_
