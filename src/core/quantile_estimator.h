// Smokescreen's MAX/MIN estimator (paper Algorithm 2, Theorem 3.2).
//
// MAX/MIN are approximated by extreme r-quantiles (r = 0.99 / 0.01 in the
// paper's experiments). The approximate quantile is
//   Y_approx = min{ s_i : sum_{j<=i} F_hat_j >= r },
// and the rank-relative error bound leverages the normal approximation of
// the hypergeometric distribution of sampled cumulative frequencies, with
// the finite-population variance factor (N-n)/(n(N-1)):
//   MAX: err_b = ((z * sqrt(r(1-r)) * fpc + F) / F + 1) * F / r
//   MIN: err_b = ((z * sqrt((r+F)(1-(r+F))) * fpc + F) / F + 1) * F / r
// where F = F_hat_{k_hat} (the sampled frequency of Y_approx) estimates the
// unknown F_k, min and max frequency terms, and z = phi_{delta/2}.

#ifndef SMOKESCREEN_CORE_QUANTILE_ESTIMATOR_H_
#define SMOKESCREEN_CORE_QUANTILE_ESTIMATOR_H_

#include <vector>

#include "core/estimate.h"

namespace smokescreen {
namespace core {

class SmokescreenQuantileEstimator : public QuantileEstimator {
 public:
  SmokescreenQuantileEstimator() : name_("Smokescreen") {}

  const std::string& name() const override { return name_; }

  util::Result<Estimate> EstimateQuantile(std::span<const double> sample, int64_t population,
                                          double r, bool is_max, double delta) const override;

  /// As EstimateQuantile, but sorts the sample inside `scratch` so looping
  /// callers (the profiler estimates every profile point of a group from a
  /// growing sample prefix) stop reallocating the sort buffer per point.
  util::Result<Estimate> EstimateQuantileWithScratch(std::span<const double> sample,
                                                     int64_t population, double r, bool is_max,
                                                     double delta,
                                                     std::vector<double>& scratch) const;

 private:
  std::string name_;
};

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_QUANTILE_ESTIMATOR_H_
