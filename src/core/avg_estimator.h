// Smokescreen's AVG estimator (paper Algorithm 1, Theorem 3.1).
//
// Improvements over the empirical Bernstein stopping algorithm it adapts:
//  * the confidence interval is built only for the actual sample size n (no
//    union bound over all stopping times), and
//  * the radius comes from the Hoeffding–Serfling inequality for sampling
//    without replacement, which is tighter than the empirical Bernstein
//    bound at small sample sizes.
//
// Given the interval (LB, UB) for |mu|:
//   Y_approx = sgn(x_bar) * 2*UB*LB / (UB + LB)   (harmonic midpoint)
//   err_b    = (UB - LB) / (UB + LB)
// which satisfies |Y_approx - mu| / |mu| <= err_b w.p. >= 1 - delta.

#ifndef SMOKESCREEN_CORE_AVG_ESTIMATOR_H_
#define SMOKESCREEN_CORE_AVG_ESTIMATOR_H_

#include "core/estimate.h"

namespace smokescreen {
namespace core {

class SmokescreenMeanEstimator : public MeanEstimator {
 public:
  SmokescreenMeanEstimator() : name_("Smokescreen") {}

  const std::string& name() const override { return name_; }

  util::Result<Estimate> EstimateMean(std::span<const double> sample, int64_t population,
                                      double delta) const override;

  /// Exposed interval construction for tests and for the repair algebra:
  /// returns {LB, UB} for |mu| given the sample.
  static util::Result<std::pair<double, double>> ConfidenceBounds(
      std::span<const double> sample, int64_t population, double delta);

  /// The harmonic-midpoint mapping from an interval to (Y_approx, err_b);
  /// shared with the EBGS baseline, which uses the same output construction
  /// with a different interval.
  static Estimate FromBounds(double lb, double ub, double sign);

 private:
  std::string name_;
};

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_AVG_ESTIMATOR_H_
