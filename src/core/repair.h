// Profile repair (paper §3.2.5, Algorithm 3; §3.3.1).
//
// Outputs sampled from videos degraded by NON-RANDOM interventions (reduced
// resolution, image removal) can be systematically biased, so the basic
// error bounds are not valid. A *correction set* — model outputs from video
// degraded by random interventions only — repairs the bound:
//
//   AVG/SUM/COUNT (eq. 12):
//     err_b = (1 + err_v) * |Y - Y_v| / |Y_v| + err_v
//   MAX/MIN (eq. 13), with ranks taken inside the correction set:
//     err_b = |rank(Y) - rank(Y_v)| / r + err_v
//
// where (Y_v, err_v) is the correction set's own estimate. The repaired
// bound inherits the correction set's >= 1 - delta confidence, with no
// distributional assumption on the non-randomly degraded outputs.

#ifndef SMOKESCREEN_CORE_REPAIR_H_
#define SMOKESCREEN_CORE_REPAIR_H_

#include <vector>

#include "core/estimator_api.h"
#include "query/output_source.h"
#include "query/query_spec.h"
#include "stats/rng.h"
#include "util/status.h"

namespace smokescreen {
namespace core {

/// A correction set: m frame outputs obtained under random interventions
/// only (full resolution, no removal), plus its own estimate.
struct CorrectionSet {
  std::vector<double> outputs;  // v_1 .. v_m
  /// Y_approx(v), err_b(v) at aggregate scale.
  Estimate estimate;
  int64_t size = 0;        // m
  int64_t population = 0;  // N
};

/// Samples m frames uniformly without replacement (no resolution/removal
/// interventions) and computes the correction set's estimate for `spec`.
util::Result<CorrectionSet> BuildCorrectionSet(query::FrameOutputSource& source,
                                               const query::QuerySpec& spec, int64_t m,
                                               double delta, stats::Rng& rng);

/// Builds a correction set from an explicit frame list (which must be a
/// uniform without-replacement sample, e.g. a prefix of a random
/// permutation). Lets callers grow a correction set incrementally while
/// reusing cached model outputs.
util::Result<CorrectionSet> BuildCorrectionSetFromFrames(query::FrameOutputSource& source,
                                                         const query::QuerySpec& spec,
                                                         const std::vector<int64_t>& frames,
                                                         double delta);

/// Algorithm 3's corrected error bound for a degraded estimation result.
/// May return +infinity when the correction set is uninformative (Y_v == 0).
util::Result<double> RepairErrorBound(const query::QuerySpec& spec,
                                      const EstimationResult& degraded,
                                      const CorrectionSet& correction);

/// Result of the correction-set sizing heuristic (§3.3.1).
struct CorrectionSizing {
  int64_t chosen_size = 0;
  double chosen_fraction = 0.0;
  /// The explored curve: (fraction m/N, err_b(v)) per growth step.
  std::vector<std::pair<double, double>> curve;
};

/// Grows the correction set by 1% of the original video per step and stops
/// at the elbow: when err_b(v) changes by less than `plateau_tolerance`
/// between consecutive steps, or when `max_fraction` (the administrator's
/// size limit) is reached.
util::Result<CorrectionSizing> DetermineCorrectionSetSize(query::FrameOutputSource& source,
                                                          const query::QuerySpec& spec,
                                                          double delta, stats::Rng& rng,
                                                          double max_fraction = 0.5,
                                                          double plateau_tolerance = 0.02);

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_REPAIR_H_
