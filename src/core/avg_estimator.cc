#include "core/avg_estimator.h"

#include <cmath>

#include "stats/concentration.h"
#include "stats/descriptive.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

Result<std::pair<double, double>> SmokescreenMeanEstimator::ConfidenceBounds(
    std::span<const double> sample, int64_t population, double delta) {
  if (sample.empty()) return Status::InvalidArgument("empty sample");
  if (population < static_cast<int64_t>(sample.size())) {
    return Status::InvalidArgument("population smaller than sample");
  }
  if (delta <= 0.0 || delta >= 1.0) return Status::InvalidArgument("delta must be in (0,1)");

  SMK_ASSIGN_OR_RETURN(stats::Summary summary, stats::Summarize(sample));
  double radius = stats::HoeffdingSerflingRadius(summary.range, summary.count, population, delta);
  double abs_mean = std::abs(summary.mean);
  double ub = abs_mean + radius;
  double lb = std::max(0.0, abs_mean - radius);
  return std::make_pair(lb, ub);
}

Estimate SmokescreenMeanEstimator::FromBounds(double lb, double ub, double sign) {
  Estimate est;
  if (ub <= 0.0) {
    // Degenerate all-zero sample with zero radius: the interval is {0}.
    est.y_approx = 0.0;
    est.err_b = 0.0;
    return est;
  }
  if (lb <= 0.0) {
    // Theorem 3.1's LB == 0 case: Y_approx = 0, err_b = 1.
    est.y_approx = 0.0;
    est.err_b = 1.0;
    return est;
  }
  est.y_approx = sign * 2.0 * ub * lb / (ub + lb);
  est.err_b = (ub - lb) / (ub + lb);
  return est;
}

Result<Estimate> SmokescreenMeanEstimator::EstimateMean(std::span<const double> sample,
                                                        int64_t population, double delta) const {
  SMK_ASSIGN_OR_RETURN(auto bounds, ConfidenceBounds(sample, population, delta));
  SMK_ASSIGN_OR_RETURN(stats::Summary summary, stats::Summarize(sample));
  double sign = summary.mean < 0.0 ? -1.0 : 1.0;
  return FromBounds(bounds.first, bounds.second, sign);
}

}  // namespace core
}  // namespace smokescreen
