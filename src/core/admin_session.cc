#include "core/admin_session.h"

#include <algorithm>
#include <utility>

#include "util/ascii_plot.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

AdminSession::AdminSession(ProfileHandle profile, int model_max_resolution)
    : profile_(std::move(profile)), model_max_resolution_(model_max_resolution) {
  SMK_CHECK(profile_ != nullptr) << "AdminSession requires a non-null profile handle";
  for (const ProfilePoint& point : profile_->points) {
    loosest_fraction_ = std::max(loosest_fraction_, point.interventions.sample_fraction);
    loosest_resolution_ =
        std::max(loosest_resolution_, point.interventions.EffectiveResolution(
                                          model_max_resolution));
  }
}

std::vector<AdminSession::Slice> AdminSession::InitialSlices() const {
  // Resolution knob values in the profile store the literal candidate value;
  // a slice lookup must match it exactly, so find the literal loosest knob.
  int loosest_knob_resolution = 0;
  for (const ProfilePoint& point : profile_->points) {
    loosest_knob_resolution =
        std::max(loosest_knob_resolution, point.interventions.resolution);
  }
  return {
      FractionSlice(loosest_knob_resolution, video::ClassSet::None()),
      ResolutionSlice(loosest_fraction_, video::ClassSet::None()),
      RestrictedSlice(loosest_fraction_, loosest_knob_resolution),
  };
}

AdminSession::Slice AdminSession::FractionSlice(int resolution,
                                                const video::ClassSet& restricted) const {
  Slice slice;
  slice.axis = "fraction";
  slice.title = "err_bound vs sample fraction (p=" + std::to_string(resolution) +
                ", c=" + restricted.ToString() + ")";
  slice.points = SliceByFraction(*profile_, resolution, restricted);
  return slice;
}

AdminSession::Slice AdminSession::ResolutionSlice(double fraction,
                                                  const video::ClassSet& restricted) const {
  Slice slice;
  slice.axis = "resolution";
  slice.title = "err_bound vs resolution (f=" + util::FormatDouble(fraction, 2) +
                ", c=" + restricted.ToString() + ")";
  slice.points = SliceByResolution(*profile_, fraction, restricted);
  return slice;
}

AdminSession::Slice AdminSession::RestrictedSlice(double fraction, int resolution) const {
  Slice slice;
  slice.axis = "restricted classes";
  slice.title = "err_bound vs restricted classes (f=" + util::FormatDouble(fraction, 2) +
                ", p=" + std::to_string(resolution) + ")";
  slice.points = SliceByRestricted(*profile_, fraction, resolution);
  return slice;
}

Result<std::string> AdminSession::RenderSlice(const Slice& slice) const {
  if (slice.points.empty()) {
    return Status::InvalidArgument("slice has no profile points: " + slice.title);
  }
  util::PlotSeries bound_series;
  bound_series.label = "error bound";
  bound_series.glyph = '*';
  util::PlotSeries raw_series;
  raw_series.label = "uncorrected bound";
  raw_series.glyph = 'o';
  for (size_t i = 0; i < slice.points.size(); ++i) {
    const ProfilePoint& point = slice.points[i];
    double x;
    if (slice.axis == "fraction") {
      x = point.interventions.sample_fraction;
    } else if (slice.axis == "resolution") {
      x = static_cast<double>(point.interventions.EffectiveResolution(model_max_resolution_));
    } else {
      x = static_cast<double>(point.interventions.restricted.mask());
    }
    bound_series.points.emplace_back(x, std::min(point.err_bound, 2.0));
    raw_series.points.emplace_back(x, std::min(point.err_uncorrected, 2.0));
  }
  util::PlotOptions options;
  options.x_label = slice.axis;
  options.y_label = slice.title;
  return util::RenderAsciiPlot({bound_series, raw_series}, options);
}

Result<TradeoffChoice> AdminSession::FineTune(double max_error) const {
  return ChooseTradeoff(*profile_, max_error, model_max_resolution_);
}

}  // namespace core
}  // namespace smokescreen
