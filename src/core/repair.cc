#include "core/repair.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "core/avg_estimator.h"
#include "core/quantile_estimator.h"
#include "core/var_estimator.h"
#include "stats/empirical.h"
#include "stats/sampling.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

namespace {

/// Computes the correction set's own estimate from its outputs.
Result<Estimate> EstimateCorrection(const query::QuerySpec& spec,
                                    std::span<const double> outputs, int64_t population,
                                    double delta) {
  if (spec.aggregate == query::AggregateFunction::kVar) {
    SmokescreenVarianceEstimator estimator;
    return estimator.EstimateVariance(outputs, population, delta);
  }
  if (query::IsMeanFamily(spec.aggregate)) {
    SmokescreenMeanEstimator estimator;
    SMK_ASSIGN_OR_RETURN(Estimate est, estimator.EstimateMean(outputs, population, delta));
    if (spec.aggregate != query::AggregateFunction::kAvg) {
      est.y_approx *= static_cast<double>(population);
    }
    return est;
  }
  SmokescreenQuantileEstimator estimator;
  bool is_max = spec.aggregate == query::AggregateFunction::kMax;
  return estimator.EstimateQuantile(outputs, population, spec.EffectiveQuantileR(), is_max,
                                    delta);
}

}  // namespace

Result<CorrectionSet> BuildCorrectionSetFromFrames(query::FrameOutputSource& source,
                                                   const query::QuerySpec& spec,
                                                   const std::vector<int64_t>& frames,
                                                   double delta) {
  SMK_RETURN_IF_ERROR(spec.Validate());
  int64_t population = source.dataset().num_frames();
  if (frames.empty() || static_cast<int64_t>(frames.size()) > population) {
    return Status::InvalidArgument("correction set size must be in [1, N]");
  }
  CorrectionSet correction;
  correction.size = static_cast<int64_t>(frames.size());
  correction.population = population;
  SMK_ASSIGN_OR_RETURN(correction.outputs,
                       source.Outputs(spec, frames, source.detector().max_resolution(), 1.0));
  SMK_ASSIGN_OR_RETURN(correction.estimate,
                       EstimateCorrection(spec, correction.outputs, population, delta));
  return correction;
}

Result<CorrectionSet> BuildCorrectionSet(query::FrameOutputSource& source,
                                         const query::QuerySpec& spec, int64_t m, double delta,
                                         stats::Rng& rng) {
  int64_t population = source.dataset().num_frames();
  if (m <= 0 || m > population) {
    return Status::InvalidArgument("correction set size must be in [1, N]");
  }
  SMK_ASSIGN_OR_RETURN(std::vector<int64_t> frames,
                       stats::SampleWithoutReplacement(population, m, rng));
  return BuildCorrectionSetFromFrames(source, spec, frames, delta);
}

Result<double> RepairErrorBound(const query::QuerySpec& spec, const EstimationResult& degraded,
                                const CorrectionSet& correction) {
  SMK_RETURN_IF_ERROR(spec.Validate());
  double err_v = correction.estimate.err_b;
  if (query::UsesRelativeErrorMetric(spec.aggregate)) {
    double y = degraded.estimate.y_approx;
    double y_v = correction.estimate.y_approx;
    if (y_v == 0.0) return std::numeric_limits<double>::infinity();
    return (1.0 + err_v) * std::abs(y - y_v) / std::abs(y_v) + err_v;
  }
  // MAX/MIN: compare ranks of both approximations inside the correction set
  // (Algorithm 3 lines 7–9).
  SMK_ASSIGN_OR_RETURN(stats::EmpiricalDistribution dist,
                       stats::EmpiricalDistribution::Create(correction.outputs));
  double r = spec.EffectiveQuantileR();
  double rank_degraded = dist.RankFraction(degraded.estimate.y_approx);
  double rank_correction = dist.RankFraction(correction.estimate.y_approx);
  return std::abs(rank_degraded - rank_correction) / r + err_v;
}

Result<CorrectionSizing> DetermineCorrectionSetSize(query::FrameOutputSource& source,
                                                    const query::QuerySpec& spec, double delta,
                                                    stats::Rng& rng, double max_fraction,
                                                    double plateau_tolerance) {
  SMK_RETURN_IF_ERROR(spec.Validate());
  if (max_fraction <= 0.0 || max_fraction > 1.0) {
    return Status::InvalidArgument("max_fraction must be in (0, 1]");
  }
  int64_t population = source.dataset().num_frames();
  // Grow along a fixed random permutation so each step's outputs subsume the
  // previous step's (prefixes of a permutation are uniform without-
  // replacement samples, and the output cache turns growth into pure reuse).
  SMK_ASSIGN_OR_RETURN(std::vector<int64_t> permutation,
                       stats::SampleWithoutReplacement(population, population, rng));

  int64_t step = std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                          0.01 * static_cast<double>(population))));
  int64_t limit = std::max<int64_t>(
      step, static_cast<int64_t>(std::llround(max_fraction * static_cast<double>(population))));

  CorrectionSizing sizing;
  double prev_err = std::numeric_limits<double>::infinity();
  int resolution = source.detector().max_resolution();
  // Each step extends the previous prefix; request only the new tail as a
  // batch extension of the shared output column.
  query::OutputColumn column;
  for (int64_t m = step; m <= limit; m += step) {
    std::span<const int64_t> extension(permutation.data() + column.size(),
                                       static_cast<size_t>(m) - column.size());
    SMK_RETURN_IF_ERROR(source.AppendOutputs(spec, extension, resolution, 1.0, column));
    SMK_ASSIGN_OR_RETURN(Estimate est, EstimateCorrection(spec, column.output_prefix(
                                                              static_cast<size_t>(m)),
                                                          population, delta));
    double fraction = static_cast<double>(m) / static_cast<double>(population);
    sizing.curve.emplace_back(fraction, est.err_b);
    sizing.chosen_size = m;
    sizing.chosen_fraction = fraction;
    if (std::abs(prev_err - est.err_b) < plateau_tolerance) break;  // The elbow.
    prev_err = est.err_b;
  }
  return sizing;
}

}  // namespace core
}  // namespace smokescreen
