#include "core/profiler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <span>

#include "stats/sampling.h"
#include "util/thread_pool.h"

namespace smokescreen {
namespace core {

using degrade::InterventionSet;
using util::Result;
using util::Status;

const ProfilePoint* Profile::Find(const InterventionSet& interventions) const {
  for (const ProfilePoint& point : points) {
    if (point.interventions == interventions) return &point;
  }
  return nullptr;
}

ProfileHandle MakeProfileHandle(Profile profile) {
  return std::make_shared<const Profile>(std::move(profile));
}

Profiler::Profiler(query::FrameOutputSource& source, const detect::ClassPriorIndex& prior,
                   query::QuerySpec spec, ProfilerOptions options)
    : source_(source), prior_(prior), spec_(spec), options_(options) {
  BindMetrics(nullptr);
}

void Profiler::BindMetrics(util::MetricsRegistry* registry) {
  if (registry == nullptr) registry = &util::MetricsRegistry::Default();
  metrics_.correction_seconds = registry->GetStageHistogram("profiler.stage.correction.seconds");
  metrics_.groups_seconds = registry->GetStageHistogram("profiler.stage.groups.seconds");
  metrics_.total_seconds = registry->GetStageHistogram("profiler.stage.total.seconds");
  metrics_.generate_calls = registry->GetCounter("profiler.generate_calls");
}

void Profiler::set_metrics_registry(util::MetricsRegistry* registry) { BindMetrics(registry); }

namespace {

/// Group key: everything except the sample fraction.
struct GroupKey {
  int resolution;
  uint8_t restricted_mask;
  int64_t contrast_bits;

  bool operator<(const GroupKey& other) const {
    return std::tie(resolution, restricted_mask, contrast_bits) <
           std::tie(other.resolution, other.restricted_mask, other.contrast_bits);
  }
};

/// Walks one hypercube group: shuffles the group's eligible frames with an
/// RNG stream derived from (profile_seed, group key) — never from a shared
/// sequential stream — then estimates each ascending fraction from a nested
/// prefix of the permutation. Runs on a pool worker; touches only its own
/// `out` slot and the (thread-safe) output source, so groups are
/// embarrassingly parallel and the emitted points are identical at any
/// thread count.
util::Status GenerateGroupPoints(query::FrameOutputSource& source,
                                 const detect::ClassPriorIndex& prior,
                                 const query::QuerySpec& spec, const ProfilerOptions& options,
                                 const std::optional<CorrectionSet>& correction_set,
                                 const GroupKey& key, std::vector<InterventionSet>& group,
                                 uint64_t profile_seed, int model_max,
                                 int64_t original_population, std::vector<ProfilePoint>* out) {
  std::sort(group.begin(), group.end(),
            [](const InterventionSet& a, const InterventionSet& b) {
              return a.sample_fraction < b.sample_fraction;
            });

  std::vector<int64_t> eligible = prior.FramesWithoutAny(group.front().restricted);
  if (eligible.empty()) {
    return Status::FailedPrecondition("candidate group " + group.front().ToString() +
                                      " removes every frame");
  }
  int64_t eligible_population = static_cast<int64_t>(eligible.size());
  // One permutation per group; each fraction takes a prefix. The stream is a
  // pure function of (profile seed, group key), so scheduling order is
  // irrelevant to the result.
  stats::Rng group_rng(stats::HashCombine({profile_seed, static_cast<uint64_t>(key.resolution),
                                           static_cast<uint64_t>(key.restricted_mask),
                                           static_cast<uint64_t>(key.contrast_bits)}));
  stats::Shuffle(eligible, group_rng);

  // The group's fractions share one permutation, so each candidate's sample
  // is a prefix of the previous candidate's sample plus a tail. The column
  // below accumulates outputs for the longest prefix fetched so far; each
  // candidate requests ONLY its tail as a batch extension and estimates from
  // a prefix view — no per-frame calls, no re-materialized vectors.
  query::OutputColumn column;
  // One scratch per group walk: the quantile path sorts every prefix into
  // this buffer, so the growing column stops costing an allocation per
  // profile point.
  EstimationScratch scratch;
  double prev_err = std::numeric_limits<double>::infinity();
  for (const InterventionSet& candidate : group) {
    int64_t n = stats::FractionToCount(original_population, candidate.sample_fraction);
    n = std::min(n, eligible_population);
    int resolution = candidate.EffectiveResolution(model_max);
    if (static_cast<size_t>(n) > column.size()) {
      std::span<const int64_t> extension(eligible.data() + column.size(),
                                         static_cast<size_t>(n) - column.size());
      SMK_RETURN_IF_ERROR(source.AppendOutputs(spec, extension, resolution,
                                               candidate.contrast_scale, column));
    }
    SMK_ASSIGN_OR_RETURN(
        EstimationResult result,
        EstimateFromOutputs(spec, column.output_prefix(static_cast<size_t>(n)),
                            eligible_population, original_population, resolution,
                            options.delta, &scratch));

    ProfilePoint point;
    point.interventions = candidate;
    point.y_approx = result.estimate.y_approx;
    point.err_uncorrected = result.estimate.err_b;
    point.sample_size = result.sample_size;

    bool purely_random = candidate.restricted.empty() && resolution == model_max &&
                         candidate.contrast_scale >= 1.0;
    if (correction_set.has_value()) {
      SMK_ASSIGN_OR_RETURN(double repaired_err,
                           RepairErrorBound(spec, result, *correction_set));
      if (purely_random) {
        // Random-only: both bounds are valid; keep the tighter.
        point.err_bound = std::min(point.err_uncorrected, repaired_err);
        point.repaired = repaired_err < point.err_uncorrected;
      } else {
        point.err_bound = repaired_err;
        point.repaired = true;
      }
    } else {
      point.err_bound = point.err_uncorrected;
      point.repaired = false;
    }
    out->push_back(point);

    if (options.early_stop && std::isfinite(prev_err) &&
        prev_err - point.err_bound < options.early_stop_tolerance) {
      break;  // Bound is flattening; skip costlier fractions in this group.
    }
    prev_err = point.err_bound;
  }
  return Status::OK();
}

}  // namespace

Result<Profile> Profiler::Generate(const std::vector<InterventionSet>& candidates,
                                   stats::Rng& rng) {
  SMK_RETURN_IF_ERROR(spec_.Validate());
  if (candidates.empty()) return Status::InvalidArgument("no intervention candidates");

  // Stage spans observe into the registry histograms even on error returns
  // (a failed Generate still spent the time); the report fields are filled
  // from the same spans, so the two views can never disagree.
  util::ScopedSpan total_span(metrics_.total_seconds);
  metrics_.generate_calls->Increment();
  report_ = ProfilerReport{};
  const int64_t invocations_before = source_.model_invocations();
  const int64_t hits_before = source_.cache_hits();

  Profile profile;
  profile.spec = spec_;
  profile.dataset_name = source_.dataset().name();
  profile.detector_name = source_.detector().name();

  // Every per-group RNG stream is derived from this one up-front draw, so
  // the group walk never touches the shared sequential stream and the
  // profile is independent of worker scheduling.
  const uint64_t profile_seed = rng.NextUint64();

  // Build the correction set once; it corrects every candidate (§3.2.5).
  util::ScopedSpan correction_span(metrics_.correction_seconds);
  correction_set_.reset();
  if (options_.use_correction_set) {
    int64_t size = options_.correction_set_size;
    if (size <= 0) {
      SMK_ASSIGN_OR_RETURN(CorrectionSizing sizing,
                           DetermineCorrectionSetSize(source_, spec_, options_.delta, rng,
                                                      options_.correction_max_fraction));
      size = sizing.chosen_size;
    }
    SMK_ASSIGN_OR_RETURN(CorrectionSet correction,
                         BuildCorrectionSet(source_, spec_, size, options_.delta, rng));
    correction_set_ = std::move(correction);
  }
  report_.correction_seconds = correction_span.Stop();

  // Group candidates by the non-fraction knobs; ascending fractions within a
  // group share one permutation (nested prefixes = maximal output reuse).
  std::map<GroupKey, std::vector<InterventionSet>> groups;
  for (const InterventionSet& candidate : candidates) {
    SMK_RETURN_IF_ERROR(candidate.Validate());
    GroupKey key{candidate.resolution, candidate.restricted.mask(),
                 static_cast<int64_t>(std::llround(candidate.contrast_scale * 4096.0))};
    groups[key].push_back(candidate);
  }

  const int model_max = source_.detector().max_resolution();
  const int64_t original_population = source_.dataset().num_frames();

  // One task per group; every task writes only its own pre-allocated slot,
  // so appending in canonical (map-ordered) group order afterwards keeps the
  // profile's point ordering identical to the serial walk.
  struct GroupResult {
    std::vector<ProfilePoint> points;
    util::Status status;
  };
  std::vector<std::pair<const GroupKey*, std::vector<InterventionSet>*>> ordered;
  ordered.reserve(groups.size());
  for (auto& [key, group] : groups) ordered.emplace_back(&key, &group);
  std::vector<GroupResult> results(ordered.size());

  util::ScopedSpan groups_span(metrics_.groups_seconds);
  {
    // ParallelFor is synchronous over exactly THIS call's groups, so an
    // injected pool (the serving layer's shared executor) needs no private
    // completion latch: the calling session thread participates in its own
    // chunks and returns when they are done, never waiting on other
    // sessions' work. A Generate running ON a pool worker (nested) runs the
    // group loop inline — same results, no pool-against-itself deadlock.
    util::ThreadPool* pool = pool_;
    std::unique_ptr<util::ThreadPool> owned_pool;
    if (pool == nullptr) {
      owned_pool = std::make_unique<util::ThreadPool>(options_.num_threads);
      pool = owned_pool.get();
    }
    report_.num_threads = pool->num_threads();

    pool->ParallelFor(0, static_cast<int64_t>(ordered.size()), 1,
                      [this, &ordered, &results, profile_seed, model_max,
                       original_population](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) {
                          results[i].status = GenerateGroupPoints(
                              source_, prior_, spec_, options_, correction_set_,
                              *ordered[i].first, *ordered[i].second, profile_seed,
                              model_max, original_population, &results[i].points);
                        }
                      });
  }
  report_.groups_seconds = groups_span.Stop();

  for (GroupResult& result : results) {
    SMK_RETURN_IF_ERROR(result.status);
    for (ProfilePoint& point : result.points) profile.points.push_back(point);
  }

  report_.num_groups = static_cast<int64_t>(ordered.size());
  report_.model_invocations = source_.model_invocations() - invocations_before;
  report_.cache_hits = source_.cache_hits() - hits_before;
  report_.total_seconds = total_span.Stop();
  return profile;
}

namespace {

bool NearlyEqual(double a, double b) { return std::abs(a - b) < 1e-9; }

}  // namespace

Result<double> InterpolateBound(const Profile& profile, const degrade::InterventionSet& target) {
  SMK_RETURN_IF_ERROR(target.Validate());
  // Collect the group: points matching every knob except the fraction.
  std::vector<const ProfilePoint*> group;
  for (const ProfilePoint& point : profile.points) {
    if (point.interventions.resolution == target.resolution &&
        point.interventions.restricted == target.restricted &&
        NearlyEqual(point.interventions.contrast_scale, target.contrast_scale)) {
      group.push_back(&point);
    }
  }
  if (group.empty()) {
    return Status::NotFound("no profile points match " + target.ToString() +
                            " (ignoring the sample fraction)");
  }
  std::sort(group.begin(), group.end(), [](const ProfilePoint* a, const ProfilePoint* b) {
    return a->interventions.sample_fraction < b->interventions.sample_fraction;
  });
  double f = target.sample_fraction;
  if (f < group.front()->interventions.sample_fraction - 1e-9 ||
      f > group.back()->interventions.sample_fraction + 1e-9) {
    return Status::OutOfRange("fraction " + std::to_string(f) +
                              " outside the profiled range [" +
                              std::to_string(group.front()->interventions.sample_fraction) +
                              ", " +
                              std::to_string(group.back()->interventions.sample_fraction) + "]");
  }
  for (size_t i = 0; i < group.size(); ++i) {
    double fi = group[i]->interventions.sample_fraction;
    if (NearlyEqual(fi, f)) return group[i]->err_bound;
    if (i + 1 < group.size()) {
      double fj = group[i + 1]->interventions.sample_fraction;
      if (f > fi && f < fj) {
        double t = (f - fi) / (fj - fi);
        return group[i]->err_bound + t * (group[i + 1]->err_bound - group[i]->err_bound);
      }
    }
  }
  return group.back()->err_bound;  // f == last fraction within tolerance.
}

std::vector<ProfilePoint> SliceByFraction(const Profile& profile, int resolution,
                                          const video::ClassSet& restricted) {
  std::vector<ProfilePoint> slice;
  for (const ProfilePoint& point : profile.points) {
    if (point.interventions.resolution == resolution &&
        point.interventions.restricted == restricted) {
      slice.push_back(point);
    }
  }
  std::sort(slice.begin(), slice.end(), [](const ProfilePoint& a, const ProfilePoint& b) {
    return a.interventions.sample_fraction < b.interventions.sample_fraction;
  });
  return slice;
}

std::vector<ProfilePoint> SliceByResolution(const Profile& profile, double fraction,
                                            const video::ClassSet& restricted) {
  std::vector<ProfilePoint> slice;
  for (const ProfilePoint& point : profile.points) {
    if (NearlyEqual(point.interventions.sample_fraction, fraction) &&
        point.interventions.restricted == restricted) {
      slice.push_back(point);
    }
  }
  std::sort(slice.begin(), slice.end(), [](const ProfilePoint& a, const ProfilePoint& b) {
    return a.interventions.resolution < b.interventions.resolution;
  });
  return slice;
}

std::vector<ProfilePoint> SliceByRestricted(const Profile& profile, double fraction,
                                            int resolution) {
  std::vector<ProfilePoint> slice;
  for (const ProfilePoint& point : profile.points) {
    if (NearlyEqual(point.interventions.sample_fraction, fraction) &&
        point.interventions.resolution == resolution) {
      slice.push_back(point);
    }
  }
  std::sort(slice.begin(), slice.end(), [](const ProfilePoint& a, const ProfilePoint& b) {
    return a.interventions.restricted.mask() < b.interventions.restricted.mask();
  });
  return slice;
}

}  // namespace core
}  // namespace smokescreen
