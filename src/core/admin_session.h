// The administration procedure of §3.1.
//
// Error bounds over the intervention candidates form a degradation
// hypercube with axes (f, p, c). Administrators are initially shown three
// cube slices — each varying one knob with the unseen dimensions fixed to
// their LOOSEST intervention values — as 2-D plots; they then adjust the
// fixed dimensions for more plots and fine-tune the knobs against bounded
// error values. AdminSession wraps a generated Profile with exactly that
// workflow, including terminal-rendered plots of each slice.

#ifndef SMOKESCREEN_CORE_ADMIN_SESSION_H_
#define SMOKESCREEN_CORE_ADMIN_SESSION_H_

#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/tradeoff.h"
#include "util/status.h"

namespace smokescreen {
namespace core {

class AdminSession {
 public:
  /// One 2-D cut through the degradation hypercube.
  struct Slice {
    std::string title;
    /// The knob being varied, for plotting ("fraction", "resolution",
    /// "restricted classes").
    std::string axis;
    std::vector<ProfilePoint> points;
  };

  /// Takes SHARED ownership of the profile (aborts on a null handle) —
  /// there is no lifetime contract for the caller to get wrong: the profile
  /// lives as long as any session, cache entry or other handle does. The
  /// old constructor took `const Profile&` with a comment-only "must
  /// outlive the session" rule; a caller whose profile was a temporary (or
  /// a cache entry evicted mid-session) got silent dangling reads.
  /// `model_max_resolution` resolves unset resolution knobs.
  AdminSession(ProfileHandle profile, int model_max_resolution);

  /// Loosest (least degrading) values present in the profile: the largest
  /// sample fraction, the highest resolution, and no removal.
  double LoosestFraction() const { return loosest_fraction_; }
  int LoosestResolution() const { return loosest_resolution_; }

  /// The three plots initially shown (§3.1): vary one knob, fix the others
  /// to their loosest values.
  std::vector<Slice> InitialSlices() const;

  /// Adjusted slices: the administrator pins the fixed dimensions elsewhere.
  Slice FractionSlice(int resolution, const video::ClassSet& restricted) const;
  Slice ResolutionSlice(double fraction, const video::ClassSet& restricted) const;
  Slice RestrictedSlice(double fraction, int resolution) const;

  /// Renders a slice's (knob, err_bound) curve as an ASCII plot, marking
  /// uncorrected and repaired bounds as separate series.
  util::Result<std::string> RenderSlice(const Slice& slice) const;

  /// Fine-tuning: the strongest degradation whose bound meets `max_error`
  /// (delegates to ChooseTradeoff over the whole hypercube).
  util::Result<TradeoffChoice> FineTune(double max_error) const;

  /// The owned profile (never null).
  const ProfileHandle& profile() const { return profile_; }

 private:
  ProfileHandle profile_;
  int model_max_resolution_;
  double loosest_fraction_ = 0.0;
  int loosest_resolution_ = 0;
};

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_ADMIN_SESSION_H_
