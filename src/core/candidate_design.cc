#include "core/candidate_design.h"

#include <algorithm>
#include <cmath>

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;
using video::ClassSet;
using video::ObjectClass;

std::vector<double> FractionCandidates(const CandidateGridOptions& options) {
  std::vector<double> fractions;
  double cap = options.max_allowed_fraction > 0.0
                   ? std::min(options.max_fraction, options.max_allowed_fraction)
                   : options.max_fraction;
  for (double f = options.min_fraction; f <= cap + 1e-9; f += options.fraction_step) {
    fractions.push_back(std::min(f, 1.0));
  }
  return fractions;
}

Result<std::vector<int>> ResolutionCandidates(const detect::Detector& detector, int num) {
  if (num <= 0) return Status::InvalidArgument("num resolutions must be positive");
  int max_res = detector.max_resolution();
  int stride = detector.resolution_stride();
  std::vector<int> out;
  for (int i = 1; i <= num; ++i) {
    double target = static_cast<double>(max_res) * static_cast<double>(i) /
                    static_cast<double>(num);
    int rounded = static_cast<int>(std::llround(target / stride)) * stride;
    rounded = std::clamp(rounded, stride, max_res);
    if (out.empty() || out.back() != rounded) out.push_back(rounded);
  }
  if (out.back() != max_res) out.push_back(max_res);
  return out;
}

std::vector<ClassSet> RestrictedClassCandidates() {
  return {ClassSet::None(), ClassSet({ObjectClass::kPerson}), ClassSet({ObjectClass::kFace}),
          ClassSet({ObjectClass::kPerson, ObjectClass::kFace})};
}

Result<std::vector<degrade::InterventionSet>> BuildCandidateGrid(
    const detect::Detector& detector, const CandidateGridOptions& options) {
  std::vector<double> fractions = FractionCandidates(options);
  if (fractions.empty()) return Status::InvalidArgument("no sample-fraction candidates");
  SMK_ASSIGN_OR_RETURN(std::vector<int> resolutions,
                       ResolutionCandidates(detector, options.num_resolutions));
  std::vector<ClassSet> class_sets = options.include_class_combinations
                                         ? RestrictedClassCandidates()
                                         : std::vector<ClassSet>{ClassSet::None()};

  std::vector<degrade::InterventionSet> grid;
  for (const ClassSet& classes : class_sets) {
    // Degradation-goal filter: required restricted classes must be present.
    bool covers_required = true;
    for (int i = 0; i < video::kNumObjectClasses; ++i) {
      auto cls = static_cast<ObjectClass>(i);
      if (options.required_restricted.Contains(cls) && !classes.Contains(cls)) {
        covers_required = false;
        break;
      }
    }
    if (!covers_required) continue;
    for (int resolution : resolutions) {
      if (options.max_allowed_resolution > 0 && resolution > options.max_allowed_resolution) {
        continue;
      }
      for (double fraction : fractions) {
        degrade::InterventionSet iv;
        iv.sample_fraction = fraction;
        iv.resolution = resolution;
        iv.restricted = classes;
        grid.push_back(iv);
      }
    }
  }
  if (grid.empty()) {
    return Status::InvalidArgument("degradation-goal filters removed every candidate");
  }
  return grid;
}

}  // namespace core
}  // namespace smokescreen
