// VAR estimator — the paper's §7 names VAR as the natural next aggregate;
// this implements it as an extension using the same machinery as
// Algorithm 1.
//
// Var(X) = E[X^2] - E[X]^2. Two Hoeffding–Serfling intervals are built from
// the same without-replacement sample — one for the mean of X (budget
// delta/2) and one for the mean of X^2 (budget delta/2) — and combined by
// interval arithmetic into [VarLB, VarUB], which is then mapped through the
// harmonic-midpoint construction of Theorem 3.1:
//   Y_approx = 2*VarUB*VarLB / (VarUB + VarLB),
//   err_b    = (VarUB - VarLB) / (VarUB + VarLB).
// By the union bound both intervals hold simultaneously w.p. >= 1 - delta,
// so err_b bounds the relative error of the variance estimate.

#ifndef SMOKESCREEN_CORE_VAR_ESTIMATOR_H_
#define SMOKESCREEN_CORE_VAR_ESTIMATOR_H_

#include "core/estimate.h"

namespace smokescreen {
namespace core {

class SmokescreenVarianceEstimator {
 public:
  /// Estimates the population variance of the N frame outputs from a sample
  /// drawn without replacement. Same contract as MeanEstimator::EstimateMean.
  util::Result<Estimate> EstimateVariance(std::span<const double> sample, int64_t population,
                                          double delta) const;

  /// The interval-arithmetic core, exposed for tests: given simultaneous
  /// intervals for E[X] and E[X^2], returns {VarLB, VarUB}.
  static std::pair<double, double> VarianceBounds(double mean_lb, double mean_ub,
                                                  double mean_sq_lb, double mean_sq_ub);
};

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_VAR_ESTIMATOR_H_
