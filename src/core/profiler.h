// Profile generation (paper §3.1, §3.3).
//
// A Profile is the degradation hypercube: for every candidate intervention
// set, a (degradation, error-bound) point. The profiler implements the
// paper's §3.3.2 efficiencies:
//  * REUSE — within each (resolution, restricted-class) group, samples for
//    ascending fractions are nested prefixes of one random permutation, so
//    every model output computed at a low rate is reused at higher rates
//    (and the FrameOutputSource cache makes that reuse free);
//  * EARLY STOPPING — when the bound improves more slowly than a tolerance
//    from one fraction candidate to the next, the remaining (higher,
//    costlier) fractions of the group are skipped; the administrator
//    interpolates the missing values;
//  * PARALLELISM — hypercube groups are fully independent (each has its own
//    frame permutation and prefix-reuse chain), so Generate() dispatches one
//    task per group onto a util::ThreadPool. Each group draws its
//    permutation from an RNG stream seeded by (profile seed, group key), so
//    the profile is bit-identical at every ProfilerOptions::num_threads.
// Non-random candidates are repaired with the correction set (§3.2.5); for
// purely random candidates the tighter of the raw and repaired bounds is
// kept.

#ifndef SMOKESCREEN_CORE_PROFILER_H_
#define SMOKESCREEN_CORE_PROFILER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/repair.h"
#include "degrade/intervention.h"
#include "detect/class_prior_index.h"
#include "query/output_source.h"
#include "query/query_spec.h"
#include "stats/rng.h"
#include "util/metrics.h"
#include "util/status.h"

namespace smokescreen {
namespace util {
class ThreadPool;
}  // namespace util
namespace core {

struct ProfilePoint {
  degrade::InterventionSet interventions;
  /// Final error bound shown to the administrator.
  double err_bound = 0.0;
  /// The basic (uncorrected) bound; may be invalid under non-random
  /// interventions.
  double err_uncorrected = 0.0;
  double y_approx = 0.0;
  bool repaired = false;
  int64_t sample_size = 0;
};

struct Profile {
  query::QuerySpec spec;
  std::string dataset_name;
  std::string detector_name;
  std::vector<ProfilePoint> points;

  /// Point for an exact intervention set, or nullptr when it was skipped
  /// (early stopping) or never a candidate.
  const ProfilePoint* Find(const degrade::InterventionSet& interventions) const;
};

/// Shared, immutable ownership of a generated profile. The serving layer
/// hands these out so a profile can outlive the session that generated it,
/// sit in a cache, and back any number of concurrent AdminSessions without
/// copies — closing the old "the profile reference must outlive the admin
/// session" footgun by construction.
using ProfileHandle = std::shared_ptr<const Profile>;

/// Wraps a profile into engine-owned shared form.
ProfileHandle MakeProfileHandle(Profile profile);

struct ProfilerOptions {
  double delta = 0.05;
  /// Build/use a correction set for repair. Required for valid bounds under
  /// non-random candidates.
  bool use_correction_set = true;
  /// Fixed correction set size; 0 selects it automatically via the §3.3.1
  /// elbow heuristic.
  int64_t correction_set_size = 0;
  /// Administrator's cap on the correction set (fraction of the video).
  double correction_max_fraction = 0.2;
  bool early_stop = true;
  /// Minimum bound improvement per fraction step to keep going.
  double early_stop_tolerance = 0.005;
  /// Worker threads for the hypercube-group walk; 0 = hardware concurrency.
  /// Profiles are bit-identical at every thread count: each group's frame
  /// permutation comes from its own RNG stream derived from the group key,
  /// and points are emitted in canonical group order regardless of which
  /// worker finishes first.
  int num_threads = 0;
};

/// Wall-clock and invocation accounting for the last Generate() call
/// (§5.3.1 reports profiling time split by stage).
struct ProfilerReport {
  /// Correction-set sizing + build (sequential; consumes the caller's RNG).
  double correction_seconds = 0.0;
  /// The parallel walk over hypercube groups.
  double groups_seconds = 0.0;
  double total_seconds = 0.0;
  /// Cache misses (model invocations) attributable to this Generate().
  int64_t model_invocations = 0;
  /// Cache hits (reuse savings) attributable to this Generate().
  int64_t cache_hits = 0;
  /// Resolved worker count actually used.
  int num_threads = 0;
  /// Number of (resolution, restricted, contrast) hypercube groups.
  int64_t num_groups = 0;
};

class Profiler {
 public:
  /// References must outlive the profiler.
  Profiler(query::FrameOutputSource& source, const detect::ClassPriorIndex& prior,
           query::QuerySpec spec, ProfilerOptions options);

  /// Generates the profile over `candidates` (see BuildCandidateGrid).
  util::Result<Profile> Generate(const std::vector<degrade::InterventionSet>& candidates,
                                 stats::Rng& rng);

  /// The correction set built during the last Generate() (if enabled).
  const std::optional<CorrectionSet>& correction_set() const { return correction_set_; }

  /// Stage timings and invocation accounting for the last Generate(). The
  /// same stage durations roll into the registry's
  /// "profiler.stage.{correction,groups,total}.seconds" histograms (one
  /// observation per Generate per stage); the report stays the per-call view,
  /// the registry the cross-call aggregate.
  const ProfilerReport& last_report() const { return report_; }

  /// Re-points the profiler.* instruments at `registry`; nullptr restores
  /// util::MetricsRegistry::Default(). Bind before Generate().
  void set_metrics_registry(util::MetricsRegistry* registry);

  /// Runs the hypercube-group walk on a SHARED executor instead of a pool
  /// constructed per Generate() call. Completion is tracked by a private
  /// latch over this call's own tasks — never ThreadPool::Wait(), which
  /// would also wait on unrelated users of the pool (other sessions'
  /// profile runs in the serving layer). The pool is borrowed, not owned;
  /// it must outlive the profiler, and Generate() must not itself be called
  /// from one of the pool's worker tasks (the caller blocks on the latch —
  /// a worker doing that could deadlock the pool against itself). nullptr
  /// (the default) restores the private per-call pool sized by
  /// ProfilerOptions::num_threads. Results are bit-identical either way.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  void BindMetrics(util::MetricsRegistry* registry);

  query::FrameOutputSource& source_;
  const detect::ClassPriorIndex& prior_;
  query::QuerySpec spec_;
  ProfilerOptions options_;
  util::ThreadPool* pool_ = nullptr;
  std::optional<CorrectionSet> correction_set_;
  ProfilerReport report_;

  /// Registry-bound stage histograms (never null after construction).
  struct Instruments {
    util::Histogram* correction_seconds = nullptr;
    util::Histogram* groups_seconds = nullptr;
    util::Histogram* total_seconds = nullptr;
    util::Counter* generate_calls = nullptr;
  };
  Instruments metrics_;
};

/// §2.3: "missing values should simply be interpolated by the
/// administrator". Returns the error bound at `target`, linearly
/// interpolated over the sample fraction within the profile group matching
/// target's other knobs (resolution, restricted classes, contrast). Error
/// when no such group exists or the fraction lies outside the group's range.
util::Result<double> InterpolateBound(const Profile& profile,
                                      const degrade::InterventionSet& target);

/// 2-D cube slices (the plots initially shown to administrators, with the
/// unseen dimensions fixed): all points matching the fixed knobs, ordered by
/// the varying knob.
std::vector<ProfilePoint> SliceByFraction(const Profile& profile, int resolution,
                                          const video::ClassSet& restricted);
std::vector<ProfilePoint> SliceByResolution(const Profile& profile, double fraction,
                                            const video::ClassSet& restricted);
std::vector<ProfilePoint> SliceByRestricted(const Profile& profile, double fraction,
                                            int resolution);

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_PROFILER_H_
