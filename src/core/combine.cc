#include "core/combine.h"

#include "core/avg_estimator.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

Result<CombinedEstimate> CombineMeanEstimates(const std::vector<StratumInterval>& strata) {
  if (strata.empty()) return Status::InvalidArgument("no strata to combine");

  CombinedEstimate combined;
  for (const StratumInterval& stratum : strata) {
    if (stratum.population <= 0) {
      return Status::InvalidArgument("stratum population must be positive");
    }
    if (stratum.lb < 0.0 || stratum.lb > stratum.ub) {
      return Status::InvalidArgument("stratum interval must satisfy 0 <= lb <= ub");
    }
    if (stratum.delta <= 0.0 || stratum.delta >= 1.0) {
      return Status::InvalidArgument("stratum delta must be in (0,1)");
    }
    combined.total_population += stratum.population;
    combined.total_delta += stratum.delta;
  }
  if (combined.total_delta >= 1.0) {
    return Status::InvalidArgument("combined failure budget reaches 1; use smaller deltas");
  }

  double lb = 0.0, ub = 0.0;
  for (const StratumInterval& stratum : strata) {
    double weight = static_cast<double>(stratum.population) /
                    static_cast<double>(combined.total_population);
    lb += weight * stratum.lb;
    ub += weight * stratum.ub;
  }
  combined.estimate = SmokescreenMeanEstimator::FromBounds(lb, ub, /*sign=*/1.0);
  combined.strata_combined = static_cast<int64_t>(strata.size());
  combined.strata_total = combined.strata_combined;
  return combined;
}

}  // namespace core
}  // namespace smokescreen
