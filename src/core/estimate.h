// Estimator interfaces shared by Smokescreen's algorithms (core/) and the
// competing methods of §5.1 (baselines/).
//
// All estimators consume a span of frame-level model outputs sampled
// WITHOUT REPLACEMENT from a population of known size, and produce an
// approximate answer plus a high-confidence upper bound err_b on the
// relative error — |Y_approx - Y_true| / |Y_true| for the mean family, and
// the rank-relative metric for quantiles (MAX/MIN).

#ifndef SMOKESCREEN_CORE_ESTIMATE_H_
#define SMOKESCREEN_CORE_ESTIMATE_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace smokescreen {
namespace core {

/// An approximate query answer with its error upper bound (valid with
/// probability at least 1 - delta).
struct Estimate {
  double y_approx = 0.0;
  double err_b = 0.0;
};

/// True when `truth` lies inside the estimate's certified relative-error
/// interval, i.e. |y_approx - truth| <= err_b * |truth|. This is the check
/// every coverage experiment and fault-tolerance test performs; a zero truth
/// is covered only by a zero answer (relative error is undefined there).
inline bool CoversTruth(const Estimate& estimate, double truth) {
  if (truth == 0.0) return estimate.y_approx == 0.0;
  return std::abs(estimate.y_approx - truth) <= estimate.err_b * std::abs(truth);
}

/// Estimators for AVG (and, after scaling by N, SUM and COUNT).
class MeanEstimator {
 public:
  virtual ~MeanEstimator() = default;
  virtual const std::string& name() const = 0;

  /// `sample` holds n outputs drawn without replacement from `population`
  /// values; delta in (0,1) is the allowed failure probability. Returns the
  /// mean-scale estimate and the relative-error bound. The sample is taken
  /// as a span so batched/columnar callers can pass prefix views without
  /// copying.
  virtual util::Result<Estimate> EstimateMean(std::span<const double> sample,
                                              int64_t population, double delta) const = 0;
};

/// Estimators for MAX/MIN via extreme r-quantiles.
class QuantileEstimator {
 public:
  virtual ~QuantileEstimator() = default;
  virtual const std::string& name() const = 0;

  /// Estimates the r-th quantile from `sample` (drawn without replacement
  /// from `population` values). `is_max` selects the MAX-side (r near 1) or
  /// MIN-side (r near 0) bound formula. err_b bounds the rank-relative error.
  virtual util::Result<Estimate> EstimateQuantile(std::span<const double> sample,
                                                  int64_t population, double r, bool is_max,
                                                  double delta) const = 0;
};

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_ESTIMATE_H_
