// Intervention candidate design (paper §3.3.2): sample fractions at 1%
// intervals, ten uniformly spaced frame resolutions (respecting the model's
// stride constraint), and every combination of possibly sensitive classes.
// Administrators then filter out candidates that cannot satisfy their
// degradation goals.

#ifndef SMOKESCREEN_CORE_CANDIDATE_DESIGN_H_
#define SMOKESCREEN_CORE_CANDIDATE_DESIGN_H_

#include <vector>

#include "degrade/intervention.h"
#include "detect/detector.h"
#include "util/status.h"
#include "video/types.h"

namespace smokescreen {
namespace core {

struct CandidateGridOptions {
  double min_fraction = 0.01;
  double max_fraction = 1.0;
  double fraction_step = 0.01;
  int num_resolutions = 10;
  /// When false, only the no-removal candidate is generated.
  bool include_class_combinations = true;

  // --- Administrator degradation-goal filters (public preferences) ---
  /// Candidates with a larger sample fraction are filtered out (<= 0 = none).
  double max_allowed_fraction = 0.0;
  /// Candidates with a higher resolution are filtered out (0 = none).
  int max_allowed_resolution = 0;
  /// Classes that MUST be restricted in every candidate.
  video::ClassSet required_restricted;
};

/// Sample-fraction candidates at `fraction_step` intervals.
std::vector<double> FractionCandidates(const CandidateGridOptions& options);

/// `num` resolutions uniformly spanning (0, max] rounded to the model's
/// stride, deduplicated, ascending. Always includes the maximum.
util::Result<std::vector<int>> ResolutionCandidates(const detect::Detector& detector, int num);

/// All subsets of the sensitive classes {person, face}: none, person, face,
/// person+face.
std::vector<video::ClassSet> RestrictedClassCandidates();

/// Full cartesian grid with the administrator's filters applied.
util::Result<std::vector<degrade::InterventionSet>> BuildCandidateGrid(
    const detect::Detector& detector, const CandidateGridOptions& options);

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_CANDIDATE_DESIGN_H_
