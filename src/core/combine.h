// Combining per-camera estimates (multi-camera deployments).
//
// The paper's system model has a SET of configurable networked cameras
// feeding one query processor (§1). When each camera k covers N_k frames and
// produces a mean-family interval [LB_k, UB_k] valid w.p. >= 1 - delta_k,
// the city-wide mean lies in [sum w_k LB_k, sum w_k UB_k] with
// w_k = N_k / sum N, valid w.p. >= 1 - sum delta_k (union bound). Mapping
// that combined interval through Theorem 3.1's harmonic construction yields
// a city-wide Y_approx and relative-error bound.

#ifndef SMOKESCREEN_CORE_COMBINE_H_
#define SMOKESCREEN_CORE_COMBINE_H_

#include <cstdint>
#include <vector>

#include "core/estimate.h"
#include "util/status.h"

namespace smokescreen {
namespace core {

/// One camera's contribution: a mean-scale confidence interval over its own
/// N_k frames, valid with probability >= 1 - delta.
struct StratumInterval {
  double lb = 0.0;
  double ub = 0.0;
  int64_t population = 0;  // N_k.
  double delta = 0.05;
};

struct CombinedEstimate {
  /// City-wide mean-scale answer and relative-error bound.
  Estimate estimate;
  /// Total failure budget: sum of the strata deltas.
  double total_delta = 0.0;
  /// Total population covered by the combined strata.
  int64_t total_population = 0;

  // --- Partial-answer reporting (graceful degradation) ----------------------
  /// Fraction of the full deployment's frame population contributed by the
  /// strata actually combined. 1.0 when every registered feed participated;
  /// < 1.0 for a partial answer over the surviving feeds. Set by the caller
  /// that knows the full population (e.g. camera::CentralSystem); defaults
  /// to full coverage.
  double coverage = 1.0;
  /// Strata that went into the combination (== strata.size()).
  int64_t strata_combined = 0;
  /// Strata the deployment *has* (registered feeds); equals strata_combined
  /// for a full answer. Set by the caller; defaults to strata_combined.
  int64_t strata_total = 0;
};

/// Combines per-stratum intervals into one estimate. Error when empty, when
/// any interval is malformed (lb > ub, lb < 0, population <= 0), or when the
/// summed failure budget reaches 1 (the combined bound would be vacuous).
util::Result<CombinedEstimate> CombineMeanEstimates(const std::vector<StratumInterval>& strata);

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_COMBINE_H_
