// ResultErrorEst — the single entry point of the paper's Algorithm 3
// (lines 1–2): apply a set of destructive interventions to the video, run
// the detection UDF on the surviving sampled frames, and produce the
// approximate aggregate answer plus its error upper bound, dispatching to
// the AVG-family estimator (§3.2.1–3.2.3) or the quantile estimator
// (§3.2.4) as appropriate.

#ifndef SMOKESCREEN_CORE_ESTIMATOR_API_H_
#define SMOKESCREEN_CORE_ESTIMATOR_API_H_

#include <span>
#include <vector>

#include "core/estimate.h"
#include "degrade/degraded_view.h"
#include "degrade/intervention.h"
#include "detect/class_prior_index.h"
#include "query/output_source.h"
#include "query/query_spec.h"
#include "stats/rng.h"
#include "util/status.h"

namespace smokescreen {
namespace core {

/// Outcome of one degraded estimation run.
struct EstimationResult {
  /// Aggregate-scale answer and relative-error bound (SUM/COUNT answers are
  /// scaled by the original population N, as in §3.2.2).
  Estimate estimate;
  int64_t sample_size = 0;
  /// Population the sample was drawn from (frames surviving image removal).
  int64_t eligible_population = 0;
  /// Original query-specified frame count N.
  int64_t original_population = 0;
  int resolution = 0;
  /// The sampled frame-level outputs (kept for profile repair's rank logic).
  std::vector<double> sample_outputs;
};

/// Runs the query under `interventions` and estimates answer + error bound.
/// Randomness: frame sampling only, driven by `rng` (detector outputs are
/// deterministic).
util::Result<EstimationResult> ResultErrorEst(query::FrameOutputSource& source,
                                              const detect::ClassPriorIndex& prior,
                                              const query::QuerySpec& spec,
                                              const degrade::InterventionSet& interventions,
                                              double delta, stats::Rng& rng);

/// Estimation from an explicit list of pre-sampled frames (used by the
/// profiler's nested-prefix reuse strategy, where samples for ascending
/// fractions share a common permutation so cached outputs are reused).
/// Fetches the outputs with one batched request, then delegates to
/// EstimateFromOutputs.
util::Result<EstimationResult> EstimateFromFrames(query::FrameOutputSource& source,
                                                  const query::QuerySpec& spec,
                                                  std::span<const int64_t> frames,
                                                  int64_t eligible_population,
                                                  int64_t original_population, int resolution,
                                                  double contrast_scale, double delta);

/// Reusable buffers for estimation loops. The profiler evaluates one
/// estimate per profile point over a growing sample column; passing the
/// same scratch to every call lets the quantile path's sort buffer reach
/// its high-water capacity once instead of reallocating per point.
struct EstimationScratch {
  std::vector<double> sort_buffer;
};

/// Estimation from already-materialized frame outputs (a prefix view of a
/// batched OutputColumn). This is the profiler's fast path: each candidate
/// sampling fraction estimates from a prefix of the group's shared column
/// without re-requesting or copying frames. `scratch` (optional) reuses
/// buffers across calls; results are identical with or without it.
util::Result<EstimationResult> EstimateFromOutputs(const query::QuerySpec& spec,
                                                   std::span<const double> outputs,
                                                   int64_t eligible_population,
                                                   int64_t original_population, int resolution,
                                                   double delta,
                                                   EstimationScratch* scratch = nullptr);

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_ESTIMATOR_API_H_
