#include "core/estimator_api.h"

#include "core/avg_estimator.h"
#include "core/quantile_estimator.h"
#include "core/var_estimator.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

Result<EstimationResult> EstimateFromOutputs(const query::QuerySpec& spec,
                                             std::span<const double> outputs,
                                             int64_t eligible_population,
                                             int64_t original_population, int resolution,
                                             double delta, EstimationScratch* scratch) {
  SMK_RETURN_IF_ERROR(spec.Validate());
  if (outputs.empty()) return Status::InvalidArgument("no outputs to estimate from");

  EstimationResult result;
  result.sample_size = static_cast<int64_t>(outputs.size());
  result.eligible_population = eligible_population;
  result.original_population = original_population;
  result.resolution = resolution;
  result.sample_outputs.assign(outputs.begin(), outputs.end());

  if (spec.aggregate == query::AggregateFunction::kVar) {
    SmokescreenVarianceEstimator estimator;
    SMK_ASSIGN_OR_RETURN(result.estimate,
                         estimator.EstimateVariance(result.sample_outputs, eligible_population,
                                                    delta));
  } else if (query::IsMeanFamily(spec.aggregate)) {
    SmokescreenMeanEstimator estimator;
    SMK_ASSIGN_OR_RETURN(Estimate mean_est, estimator.EstimateMean(result.sample_outputs,
                                                                   eligible_population, delta));
    result.estimate = mean_est;
    if (spec.aggregate != query::AggregateFunction::kAvg) {
      // SUM/COUNT (§3.2.2–3.2.3): Y_approx scales by the known video length
      // N; the relative-error bound is unchanged.
      result.estimate.y_approx *= static_cast<double>(original_population);
    }
  } else {
    SmokescreenQuantileEstimator estimator;
    bool is_max = spec.aggregate == query::AggregateFunction::kMax;
    if (scratch != nullptr) {
      SMK_ASSIGN_OR_RETURN(
          result.estimate,
          estimator.EstimateQuantileWithScratch(result.sample_outputs, eligible_population,
                                                spec.EffectiveQuantileR(), is_max, delta,
                                                scratch->sort_buffer));
    } else {
      SMK_ASSIGN_OR_RETURN(
          result.estimate,
          estimator.EstimateQuantile(result.sample_outputs, eligible_population,
                                     spec.EffectiveQuantileR(), is_max, delta));
    }
  }
  return result;
}

Result<EstimationResult> EstimateFromFrames(query::FrameOutputSource& source,
                                            const query::QuerySpec& spec,
                                            std::span<const int64_t> frames,
                                            int64_t eligible_population,
                                            int64_t original_population, int resolution,
                                            double contrast_scale, double delta) {
  SMK_RETURN_IF_ERROR(spec.Validate());
  if (frames.empty()) return Status::InvalidArgument("no frames to estimate from");
  query::OutputColumn column;
  SMK_RETURN_IF_ERROR(source.OutputsInto(spec, frames, resolution, contrast_scale, column));
  return EstimateFromOutputs(spec, column.output_span(), eligible_population,
                             original_population, resolution, delta);
}

Result<EstimationResult> ResultErrorEst(query::FrameOutputSource& source,
                                        const detect::ClassPriorIndex& prior,
                                        const query::QuerySpec& spec,
                                        const degrade::InterventionSet& interventions,
                                        double delta, stats::Rng& rng) {
  SMK_ASSIGN_OR_RETURN(degrade::DegradedView view,
                       degrade::DegradedView::Create(source.dataset(), prior, interventions,
                                                     source.detector().max_resolution(), rng));
  return EstimateFromFrames(source, spec, view.sampled_frames(), view.eligible_population(),
                            view.original_population(), view.resolution(),
                            view.contrast_scale(), delta);
}

}  // namespace core
}  // namespace smokescreen
