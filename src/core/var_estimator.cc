#include "core/var_estimator.h"

#include <algorithm>
#include <cmath>

#include "core/avg_estimator.h"
#include "stats/concentration.h"
#include "stats/descriptive.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

std::pair<double, double> SmokescreenVarianceEstimator::VarianceBounds(double mean_lb,
                                                                       double mean_ub,
                                                                       double mean_sq_lb,
                                                                       double mean_sq_ub) {
  // Range of m^2 over m in [mean_lb, mean_ub].
  double sq_max = std::max(mean_lb * mean_lb, mean_ub * mean_ub);
  double sq_min;
  if (mean_lb <= 0.0 && mean_ub >= 0.0) {
    sq_min = 0.0;  // The interval straddles zero.
  } else {
    sq_min = std::min(mean_lb * mean_lb, mean_ub * mean_ub);
  }
  double var_lb = std::max(0.0, mean_sq_lb - sq_max);
  double var_ub = std::max(0.0, mean_sq_ub - sq_min);
  return {var_lb, var_ub};
}

Result<Estimate> SmokescreenVarianceEstimator::EstimateVariance(std::span<const double> sample,
                                                                int64_t population,
                                                                double delta) const {
  if (sample.empty()) return Status::InvalidArgument("empty sample");
  if (population < static_cast<int64_t>(sample.size())) {
    return Status::InvalidArgument("population smaller than sample");
  }
  if (delta <= 0.0 || delta >= 1.0) return Status::InvalidArgument("delta must be in (0,1)");

  std::vector<double> squares;
  squares.reserve(sample.size());
  for (double v : sample) squares.push_back(v * v);

  SMK_ASSIGN_OR_RETURN(stats::Summary s_x, stats::Summarize(sample));
  SMK_ASSIGN_OR_RETURN(stats::Summary s_x2, stats::Summarize(squares));

  // Split the failure budget across the two simultaneous intervals.
  double half_delta = delta / 2.0;
  double radius_x =
      stats::HoeffdingSerflingRadius(s_x.range, s_x.count, population, half_delta);
  double radius_x2 =
      stats::HoeffdingSerflingRadius(s_x2.range, s_x2.count, population, half_delta);

  auto [var_lb, var_ub] = VarianceBounds(s_x.mean - radius_x, s_x.mean + radius_x,
                                         s_x2.mean - radius_x2, s_x2.mean + radius_x2);
  return SmokescreenMeanEstimator::FromBounds(var_lb, var_ub, /*sign=*/1.0);
}

}  // namespace core
}  // namespace smokescreen
