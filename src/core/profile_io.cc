#include "core/profile_io.h"

#include <fstream>
#include <limits>

#include "util/string_util.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

namespace {

constexpr char kMagicLine[] = "#smokescreen-profile v1";

}  // namespace

Status SaveProfile(const Profile& profile, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << kMagicLine << "\n";
  out << "#dataset=" << profile.dataset_name << "\n";
  out << "#detector=" << profile.detector_name << "\n";
  out << "#aggregate=" << query::AggregateFunctionName(profile.spec.aggregate) << "\n";
  out << "#count_threshold=" << profile.spec.count_threshold << "\n";
  out << "#quantile_r=" << util::FormatDouble(profile.spec.quantile_r, 6) << "\n";
  out << "fraction,resolution,restricted,contrast_scale,err_bound,err_uncorrected,"
         "y_approx,repaired,sample_size\n";
  for (const ProfilePoint& p : profile.points) {
    out << util::FormatDouble(p.interventions.sample_fraction, 6) << ','
        << p.interventions.resolution << ','
        << static_cast<int>(p.interventions.restricted.mask()) << ','
        << util::FormatDouble(p.interventions.contrast_scale, 6) << ','
        << util::FormatDouble(p.err_bound, 9) << ','
        << util::FormatDouble(p.err_uncorrected, 9) << ','
        << util::FormatDouble(p.y_approx, 9) << ',' << (p.repaired ? 1 : 0) << ','
        << p.sample_size << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Profile> LoadProfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);

  std::string line;
  if (!std::getline(in, line) || util::Trim(line) != kMagicLine) {
    return Status::IoError("not a smokescreen profile: " + path);
  }

  Profile profile;
  // Header comments.
  while (in.peek() == '#') {
    std::getline(in, line);
    auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = line.substr(1, eq - 1);
    std::string value = line.substr(eq + 1);
    if (key == "dataset") {
      profile.dataset_name = value;
    } else if (key == "detector") {
      profile.detector_name = value;
    } else if (key == "aggregate") {
      SMK_ASSIGN_OR_RETURN(profile.spec.aggregate, query::AggregateFunctionFromName(value));
    } else if (key == "count_threshold") {
      // Strict parses: a corrupt header must fail loudly, not load as 0.
      SMK_ASSIGN_OR_RETURN(int64_t threshold, util::ParseInt(value));
      profile.spec.count_threshold = static_cast<int>(threshold);
    } else if (key == "quantile_r") {
      SMK_ASSIGN_OR_RETURN(profile.spec.quantile_r, util::ParseDouble(value));
    }
  }
  // Column header.
  if (!std::getline(in, line) || !util::StartsWith(line, "fraction,")) {
    return Status::IoError("missing column header in " + path);
  }
  // Rows.
  while (std::getline(in, line)) {
    if (util::Trim(line).empty()) continue;
    std::vector<std::string> cells = util::Split(line, ',');
    if (cells.size() != 9) {
      return Status::IoError("malformed profile row: " + line);
    }
    ProfilePoint p;
    // Strict parses: atoi/atof would silently turn a corrupt row into
    // all-zero bounds; any malformed cell now fails the whole load.
    SMK_ASSIGN_OR_RETURN(p.interventions.sample_fraction, util::ParseDouble(cells[0]));
    SMK_ASSIGN_OR_RETURN(int64_t resolution, util::ParseInt(cells[1]));
    if (resolution < 0 || resolution > std::numeric_limits<int>::max()) {
      return Status::IoError("resolution out of range in row: " + line);
    }
    p.interventions.resolution = static_cast<int>(resolution);
    SMK_ASSIGN_OR_RETURN(int64_t mask, util::ParseInt(cells[2]));
    if (mask < 0 || mask >= (1 << video::kNumObjectClasses)) {
      return Status::IoError("restricted mask out of range in row: " + line);
    }
    for (int i = 0; i < video::kNumObjectClasses; ++i) {
      if (mask & (1 << i)) p.interventions.restricted.Add(static_cast<video::ObjectClass>(i));
    }
    SMK_ASSIGN_OR_RETURN(p.interventions.contrast_scale, util::ParseDouble(cells[3]));
    SMK_ASSIGN_OR_RETURN(p.err_bound, util::ParseDouble(cells[4]));
    SMK_ASSIGN_OR_RETURN(p.err_uncorrected, util::ParseDouble(cells[5]));
    SMK_ASSIGN_OR_RETURN(p.y_approx, util::ParseDouble(cells[6]));
    p.repaired = cells[7] == "1";
    SMK_ASSIGN_OR_RETURN(p.sample_size, util::ParseInt(cells[8]));
    SMK_RETURN_IF_ERROR(p.interventions.Validate());
    profile.points.push_back(p);
  }
  return profile;
}

}  // namespace core
}  // namespace smokescreen
