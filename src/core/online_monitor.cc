#include "core/online_monitor.h"

#include <algorithm>
#include <cmath>

#include "core/avg_estimator.h"
#include "stats/concentration.h"

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

Result<OnlineMonitor> OnlineMonitor::Create(const query::QuerySpec& spec,
                                            int64_t expected_population, double delta) {
  SMK_RETURN_IF_ERROR(spec.Validate());
  if (!query::IsMeanFamily(spec.aggregate)) {
    return Status::NotImplemented(
        "online monitoring supports mean-family aggregates (AVG/SUM/COUNT) only");
  }
  if (expected_population <= 0) {
    return Status::InvalidArgument("expected population must be positive");
  }
  if (delta <= 0.0 || delta >= 1.0) return Status::InvalidArgument("delta must be in (0,1)");
  return OnlineMonitor(spec, expected_population, delta);
}

void OnlineMonitor::Observe(double output) { accumulator_.Add(output); }

void OnlineMonitor::ObserveAll(const std::vector<double>& outputs) {
  for (double output : outputs) accumulator_.Add(output);
}

void OnlineMonitor::Reset() { accumulator_ = stats::WelfordAccumulator(); }

Result<Estimate> OnlineMonitor::CurrentEstimate() const {
  if (accumulator_.count() == 0) return Status::FailedPrecondition("no outputs observed yet");
  int64_t n = std::min(accumulator_.count(), population_);
  double radius =
      stats::HoeffdingSerflingRadius(accumulator_.range(), n, population_, delta_);
  double abs_mean = std::abs(accumulator_.mean());
  double sign = accumulator_.mean() < 0.0 ? -1.0 : 1.0;
  Estimate est = SmokescreenMeanEstimator::FromBounds(std::max(0.0, abs_mean - radius),
                                                      abs_mean + radius, sign);
  if (spec_.aggregate != query::AggregateFunction::kAvg) {
    est.y_approx *= static_cast<double>(population_);
  }
  return est;
}

Result<bool> OnlineMonitor::IsConsistentWith(double reference_answer, double slack) const {
  if (slack < 0.0) return Status::InvalidArgument("slack must be non-negative");
  if (accumulator_.count() == 0) return Status::FailedPrecondition("no outputs observed yet");

  // Convert the reference to mean scale for comparison with the interval.
  double reference_mean = reference_answer;
  if (spec_.aggregate != query::AggregateFunction::kAvg) {
    reference_mean /= static_cast<double>(population_);
  }
  int64_t n = std::min(accumulator_.count(), population_);
  double radius =
      stats::HoeffdingSerflingRadius(accumulator_.range(), n, population_, delta_);
  radius *= 1.0 + slack;
  return std::abs(accumulator_.mean() - reference_mean) <= radius;
}

}  // namespace core
}  // namespace smokescreen
