// Online monitoring of the deployed degradation setting.
//
// After the administrator picks a tradeoff, §3.1 has the query run "on the
// video D or upcoming videos processed by the determined degradation
// operations". Profiles were computed on a representative portion, so the
// deployment needs a cheap check that upcoming video still behaves like the
// profiled video. OnlineMonitor consumes the degraded frame outputs as they
// stream in, maintains the Algorithm-1 estimate/bound incrementally (O(1)
// per frame via Welford + running min/max), and flags drift when the
// profiled answer falls outside the stream's current confidence interval —
// the administrator's cue to re-profile.
//
// Mean-family aggregates only (AVG/SUM/COUNT); extreme quantiles cannot be
// monitored from a running prefix without storing the distribution.

#ifndef SMOKESCREEN_CORE_ONLINE_MONITOR_H_
#define SMOKESCREEN_CORE_ONLINE_MONITOR_H_

#include "core/estimate.h"
#include "query/query_spec.h"
#include "stats/descriptive.h"
#include "util/status.h"

namespace smokescreen {
namespace core {

class OnlineMonitor {
 public:
  /// `expected_population` is the N the running sample is drawn from (the
  /// upcoming video's frame count); `delta` the per-check failure budget.
  static util::Result<OnlineMonitor> Create(const query::QuerySpec& spec,
                                            int64_t expected_population, double delta);

  /// Feeds one frame-level output (already query-transformed).
  void Observe(double output);

  /// Feeds a whole batch of outputs (a camera batch arriving at once).
  void ObserveAll(const std::vector<double>& outputs);

  /// Forgets everything observed so far. Used when a feed is re-profiled
  /// after drift or an outage: the stale stream must not contaminate the
  /// fresh one's interval.
  void Reset();

  int64_t count() const { return accumulator_.count(); }

  /// Current Algorithm-1 estimate/bound from the streamed prefix. Error when
  /// nothing has been observed yet.
  util::Result<Estimate> CurrentEstimate() const;

  /// True when `reference_answer` (the profiled Y_approx, at aggregate
  /// scale) is consistent with the stream: it lies inside the stream's
  /// current confidence interval, inflated by `slack` (relative). False
  /// signals drift — time to re-profile.
  util::Result<bool> IsConsistentWith(double reference_answer, double slack = 0.0) const;

 private:
  OnlineMonitor(const query::QuerySpec& spec, int64_t population, double delta)
      : spec_(spec), population_(population), delta_(delta) {}

  query::QuerySpec spec_;
  int64_t population_;
  double delta_;
  stats::WelfordAccumulator accumulator_;
};

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_ONLINE_MONITOR_H_
