#include "core/tradeoff.h"

#include <algorithm>
#include <cmath>

namespace smokescreen {
namespace core {

using util::Result;
using util::Status;

Result<double> AdjustThresholdForModelAccuracy(double total_error, double model_error) {
  if (total_error <= 0.0) return Status::InvalidArgument("total error budget must be positive");
  if (model_error < 0.0) return Status::InvalidArgument("model error must be non-negative");
  double budget = (1.0 + total_error) / (1.0 + model_error) - 1.0;
  if (budget <= 0.0) {
    return Status::FailedPrecondition(
        "the model's inherent error already exhausts the total budget");
  }
  return budget;
}

Result<TradeoffChoice> ChooseTradeoff(const Profile& profile, double max_error,
                                      int model_max_resolution) {
  if (max_error <= 0.0) return Status::InvalidArgument("max_error must be positive");
  const ProfilePoint* best = nullptr;
  double best_score = -1.0;
  for (const ProfilePoint& point : profile.points) {
    if (point.err_bound > max_error) continue;
    double score = point.interventions.DegradationScore(model_max_resolution);
    if (score > best_score ||
        (best != nullptr && score == best_score &&
         point.interventions.sample_fraction < best->interventions.sample_fraction)) {
      best = &point;
      best_score = score;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no intervention candidate meets error threshold " +
                            std::to_string(max_error));
  }
  TradeoffChoice choice;
  choice.interventions = best->interventions;
  choice.err_bound = best->err_bound;
  choice.degradation_score = best_score;
  return choice;
}

Result<double> MinimalKnobMeetingThreshold(
    const std::vector<std::pair<double, double>>& knob_and_bound, double max_error) {
  bool found = false;
  double best = 0.0;
  for (const auto& [knob, bound] : knob_and_bound) {
    if (bound > max_error) continue;
    if (!found || knob < best) {
      best = knob;
      found = true;
    }
  }
  if (!found) return Status::NotFound("no knob setting meets the error threshold");
  return best;
}

Result<double> TradeoffExcess(const std::vector<std::pair<double, double>>& knob_and_bound,
                              const std::vector<std::pair<double, double>>& knob_and_true_error,
                              double max_error) {
  SMK_ASSIGN_OR_RETURN(double chosen, MinimalKnobMeetingThreshold(knob_and_bound, max_error));
  SMK_ASSIGN_OR_RETURN(double oracle,
                       MinimalKnobMeetingThreshold(knob_and_true_error, max_error));
  if (oracle <= 0.0) return Status::InvalidArgument("oracle knob must be positive");
  return (chosen - oracle) / oracle;
}

}  // namespace core
}  // namespace smokescreen
