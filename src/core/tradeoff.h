// Choosing a tradeoff (paper §2.3, Figures 1–2).
//
// Given a profile and the public preference "analytical error at most tau",
// the administrator picks the most aggressive degradation whose BOUND stays
// under tau. With a loose bound the administrator is forced to a weaker
// degradation (point C of Figure 2); with a tight bound they get close to
// the oracle choice (point A). TradeoffAccuracy quantifies that gap and
// drives the paper's "88% more accurate tradeoffs" headline.

#ifndef SMOKESCREEN_CORE_TRADEOFF_H_
#define SMOKESCREEN_CORE_TRADEOFF_H_

#include "core/profiler.h"
#include "util/status.h"

namespace smokescreen {
namespace core {

struct TradeoffChoice {
  degrade::InterventionSet interventions;
  double err_bound = 0.0;
  double degradation_score = 0.0;
};

/// §2.3: administrators "can adjust the analytical accuracy threshold in the
/// selection process by considering models' inherent accuracy". If the total
/// tolerable error versus reality is `total_error` and the model itself is
/// off by `model_error` (both relative), the budget left for degradation is
///   (1 + total) = (1 + model) * (1 + degradation)
///   => degradation = (1 + total) / (1 + model) - 1.
/// Error when the model alone already exceeds the total budget.
util::Result<double> AdjustThresholdForModelAccuracy(double total_error, double model_error);

/// The profile point with err_bound <= max_error that maximizes the
/// degradation score (ties broken toward the smaller sample fraction).
/// NotFound when no candidate meets the threshold.
util::Result<TradeoffChoice> ChooseTradeoff(const Profile& profile, double max_error,
                                            int model_max_resolution);

/// Given (degradation knob value, bound) pairs for a 1-D sweep where LOWER
/// knob values mean MORE degradation (e.g. sample fraction or resolution),
/// returns the smallest knob value whose bound is <= max_error. NotFound when
/// the whole sweep violates the threshold.
util::Result<double> MinimalKnobMeetingThreshold(
    const std::vector<std::pair<double, double>>& knob_and_bound, double max_error);

/// Tradeoff-accuracy metric: how much extra (less-degraded) knob a method
/// demands relative to the oracle on a 1-D sweep. 0 = oracle-perfect.
///   excess = (knob_method - knob_oracle) / knob_oracle.
util::Result<double> TradeoffExcess(
    const std::vector<std::pair<double, double>>& knob_and_bound,
    const std::vector<std::pair<double, double>>& knob_and_true_error, double max_error);

}  // namespace core
}  // namespace smokescreen

#endif  // SMOKESCREEN_CORE_TRADEOFF_H_
