// Extension: parallel profile generation — thread-count sweep.
//
// §5.3.1 shows profile time is dominated by model invocations over the
// intervention hypercube. The hypercube groups are fully independent, so
// Profiler::Generate dispatches one task per group onto util::ThreadPool.
// This bench sweeps thread counts on both presets and records the speedup
// trajectory, verifying that every thread count produces BIT-IDENTICAL
// profile points (per-group RNG streams make the result independent of
// scheduling).
//
// The simulated detectors are orders of magnitude cheaper than real GPU
// inference (the paper extrapolates 30 ms/frame), so a pure-CPU sweep would
// measure estimator arithmetic, not the regime the paper describes. The
// bench therefore wraps the detector in a latency decorator that charges a
// configurable per-invocation model cost (default 500 us, a conservative
// stand-in for GPU inference); threads overlap these blocking invocations
// exactly as they would overlap GPU round-trips. --latency-us 0 gives the
// raw CPU-bound numbers.
//
// Usage: ext_parallel_profiler [--frames N] [--latency-us L] [--max-threads T]

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/candidate_design.h"
#include "core/profiler.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace smokescreen;

namespace {

/// Detector decorator that sleeps `latency_us` per invocation before
/// delegating, modelling the per-frame cost of a real inference backend.
class LatencyDetector : public detect::Detector {
 public:
  LatencyDetector(const detect::Detector& inner, int64_t latency_us)
      : inner_(inner), latency_us_(latency_us) {}

  const std::string& name() const override { return inner_.name(); }
  uint64_t model_id() const override { return inner_.model_id(); }
  int max_resolution() const override { return inner_.max_resolution(); }
  int resolution_stride() const override { return inner_.resolution_stride(); }

  util::Result<int> CountDetections(const video::VideoDataset& dataset, int64_t frame_index,
                                    int resolution, video::ObjectClass cls,
                                    double contrast_scale) const override {
    if (latency_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
    }
    return inner_.CountDetections(dataset, frame_index, resolution, cls, contrast_scale);
  }

 private:
  const detect::Detector& inner_;
  int64_t latency_us_;
};

bool PointsBitIdentical(const std::vector<core::ProfilePoint>& a,
                        const std::vector<core::ProfilePoint>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].interventions == b[i].interventions)) return false;
    if (a[i].err_bound != b[i].err_bound) return false;
    if (a[i].err_uncorrected != b[i].err_uncorrected) return false;
    if (a[i].y_approx != b[i].y_approx) return false;
    if (a[i].repaired != b[i].repaired) return false;
    if (a[i].sample_size != b[i].sample_size) return false;
  }
  return true;
}

struct SweepPoint {
  int threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
  int64_t invocations = 0;
  int64_t hits = 0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t frames = 1500;
  int64_t latency_us = 500;
  int max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      *out = *parsed;
    };
    if (arg == "--frames") {
      next_int(&frames);
    } else if (arg == "--latency-us") {
      next_int(&latency_us);
    } else if (arg == "--max-threads") {
      int64_t t = 0;
      next_int(&t);
      max_threads = static_cast<int>(t);
    } else {
      std::fprintf(stderr,
                   "usage: ext_parallel_profiler [--frames N] [--latency-us L]"
                   " [--max-threads T]\n");
      return 2;
    }
  }

  std::printf("=== Extension: parallel profile generation (thread sweep) ===\n");
  std::printf("frames=%lld, simulated model latency=%lld us/invocation\n\n",
              static_cast<long long>(frames), static_cast<long long>(latency_us));

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  bool all_identical = true;
  double ua_detrac_speedup_at_max = 0.0;

  for (video::ScenePreset preset :
       {video::ScenePreset::kUaDetrac, video::ScenePreset::kNightStreet}) {
    bench::Workload wl = bench::MakeWorkload(preset, "yolov4", frames);
    LatencyDetector model(*wl.model, latency_us);

    query::QuerySpec spec;
    spec.aggregate = query::AggregateFunction::kAvg;

    // 10 resolutions x 10 fractions, no class combinations: 10 independent
    // hypercube groups, matching the §5.3.1 workload shape.
    core::CandidateGridOptions grid_opts;
    grid_opts.min_fraction = 0.01;
    grid_opts.max_fraction = 0.10;
    grid_opts.fraction_step = 0.01;
    grid_opts.num_resolutions = 10;
    grid_opts.include_class_combinations = false;
    auto grid = core::BuildCandidateGrid(model, grid_opts);
    grid.status().CheckOk();

    std::vector<core::ProfilePoint> baseline;
    std::vector<SweepPoint> sweep;
    for (int threads : thread_counts) {
      // Fresh output source per run: each run pays the full model cost.
      query::FrameOutputSource source(*wl.dataset, model, video::ObjectClass::kCar);
      core::ProfilerOptions opts;
      opts.use_correction_set = false;
      opts.early_stop = false;
      opts.num_threads = threads;
      core::Profiler profiler(source, *wl.prior, spec, opts);
      stats::Rng rng(4242);

      util::Timer timer;
      auto profile = profiler.Generate(*grid, rng);
      profile.status().CheckOk();

      SweepPoint point;
      point.threads = threads;
      point.seconds = timer.ElapsedSeconds();
      point.invocations = source.model_invocations();
      point.hits = source.cache_hits();
      if (threads == 1) {
        baseline = profile->points;
      } else {
        point.identical = PointsBitIdentical(baseline, profile->points);
        all_identical = all_identical && point.identical;
      }
      point.speedup = sweep.empty() ? 1.0 : sweep.front().seconds / point.seconds;
      sweep.push_back(point);
    }

    std::printf("--- %s ---\n", wl.label.c_str());
    util::TablePrinter table(
        {"threads", "wall s", "speedup", "invocations", "cache hits", "bit-identical"});
    for (const SweepPoint& point : sweep) {
      table.AddRow({std::to_string(point.threads), util::FormatDouble(point.seconds, 3),
                    util::FormatDouble(point.speedup, 2) + "x",
                    std::to_string(point.invocations), std::to_string(point.hits),
                    point.identical ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::printf("\n");

    if (preset == video::ScenePreset::kUaDetrac) {
      ua_detrac_speedup_at_max = sweep.back().speedup;
    }
  }

  std::printf("UA-DETRAC speedup at %d threads: %.2fx (target >= 3x)\n", thread_counts.back(),
              ua_detrac_speedup_at_max);
  std::printf("profiles bit-identical across all thread counts: %s\n",
              all_identical ? "yes" : "NO");

  bool ok = all_identical && ua_detrac_speedup_at_max >= 3.0;
  return ok ? 0 : 1;
}
