// Extension: cold-path detector kernel throughput.
//
// ext_batched_throughput measures how batching amortizes a simulated
// per-invocation latency AROUND the model; this bench measures the model
// itself — the cold (uncached) compute cost of counting detections, the
// part that stands in for real GPU inference in profile generation
// (§5.3.1). No latency decorator: wall-clock here is pure kernel work plus
// the cache substrate.
//
// Three execution shapes are swept over both presets:
//   * aos-scalar     — the pre-index cold path: one CountDetections call
//                      per frame, scanning the frame's AoS object list and
//                      branching on every object's class.
//   * columnar       — direct Detector::CountBatch over the
//                      class-partitioned CSR scene index: contiguous
//                      per-class columns, per-batch constants, hoisted
//                      hash prefix (batch-size sweep).
//   * columnar+pool  — end-to-end cold FrameOutputSource run: the same
//                      kernel underneath the memo-cache substrate, with
//                      the miss-batch fanned out across a util::ThreadPool
//                      (intra-batch parallelism).
//
// aos-scalar and columnar call the detector directly (no cache) so the
// ratio isolates the kernel; columnar+pool includes the cache substrate,
// so on a many-core host it shows what a real cold profiling run gets.
//
// Every variant must produce counts bit-identical to aos-scalar, and the
// bench FAILS (exit 1) unless, on both presets:
//   * the best cold-path variant at batch 512 reaches >= 3x the scalar
//     cold-path throughput, AND
//   * columnar+pool holds its own against serial columnar at batch 512 —
//     strictly faster when the pool has real parallelism (> 1 worker, as on
//     CI runners), or within 10% (substrate-overhead parity band) when the
//     host resolves to a single worker and a speedup is physically
//     impossible.
// Results are written to a machine-readable JSON file (BENCH_kernel.json by
// default).
//
// Usage: ext_kernel_throughput [--frames N] [--threads T] [--repeats R]
//          [--pool-min-chunk N] [--out FILE]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace smokescreen;

namespace {

struct RunResult {
  double seconds = 0.0;
  std::vector<int> counts;
};

struct SweepPoint {
  std::string variant;
  int64_t batch_size = 0;  // 0 = per-frame scalar loop.
  double seconds = 0.0;
  double fps = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  // Exports the metrics registry at exit when --metrics-out <path> (stripped
  // here) or $SMOKESCREEN_METRICS_OUT is set.
  bench::MetricsDumpGuard metrics_guard(argc, argv);
  int64_t frames = 12000;
  int64_t threads = 0;  // 0 = hardware concurrency.
  int64_t repeats = 7;
  int64_t pool_min_chunk = 0;  // 0 = source default.
  std::string out_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      *out = *parsed;
    };
    if (arg == "--frames") {
      next_int(&frames);
    } else if (arg == "--threads") {
      next_int(&threads);
    } else if (arg == "--repeats") {
      next_int(&repeats);
    } else if (arg == "--pool-min-chunk") {
      next_int(&pool_min_chunk);
      if (pool_min_chunk < 0) {
        std::fprintf(stderr, "--pool-min-chunk must be >= 0 (0 = default)\n");
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ext_kernel_throughput [--frames N] [--threads T]"
                   " [--repeats R] [--pool-min-chunk N] [--out FILE]\n");
      return 2;
    }
  }
  if (repeats < 1) repeats = 1;

  util::ThreadPool pool(static_cast<int>(threads));
  std::printf("=== Extension: cold-path kernel throughput (scene index + columnar kernel) ===\n");
  std::printf("frames=%lld, pool threads=%d, repeats=%lld (best run kept)\n\n",
              static_cast<long long>(frames), pool.num_threads(),
              static_cast<long long>(repeats));

  const std::vector<int64_t> batch_sizes = {64, 512, 4096};
  const int resolution = 320;

  bool all_identical = true;
  bool all_meet_target = true;
  bool pool_gate_pass = true;
  // Architecture-aware pooled-vs-serial gate at batch 512: with real
  // parallelism (> 1 worker) the pooled end-to-end run must BEAT the direct
  // serial kernel outright; a single-worker host cannot speed anything up,
  // so there the gate only forbids the cache substrate from costing more
  // than 10%.
  const bool pool_is_parallel = pool.num_threads() > 1;
  const double pool_gate_threshold = pool_is_parallel ? 1.0 : 0.9;
  std::string json_presets;

  for (video::ScenePreset preset :
       {video::ScenePreset::kUaDetrac, video::ScenePreset::kNightStreet}) {
    bench::Workload wl = bench::MakeWorkload(preset, "yolov4", frames);

    std::vector<int64_t> all_frames(static_cast<size_t>(wl.dataset->num_frames()));
    std::iota(all_frames.begin(), all_frames.end(), int64_t{0});

    // aos-scalar and columnar time the detector itself (no memo cache):
    // scalar is one virtual CountDetections per frame, columnar is
    // CountBatch over batch_size-sized index chunks. columnar+pool times a
    // FRESH cold FrameOutputSource (cache substrate included) with the
    // miss-batches fanned out on the pool.
    auto run_once = [&](int64_t batch_size, bool use_pool, bool scalar) {
      RunResult run;
      if (scalar) {
        util::Timer timer;
        run.counts.reserve(all_frames.size());
        for (int64_t frame : all_frames) {
          auto count =
              wl.model->CountDetections(*wl.dataset, frame, resolution, video::ObjectClass::kCar,
                                        /*contrast_scale=*/1.0);
          count.status().CheckOk();
          run.counts.push_back(*count);
        }
        run.seconds = timer.ElapsedSeconds();
      } else if (!use_pool) {
        run.counts.resize(all_frames.size());
        std::span<const int64_t> frames_span(all_frames);
        std::span<int> out_span(run.counts);
        util::Timer timer;
        for (size_t begin = 0; begin < all_frames.size();
             begin += static_cast<size_t>(batch_size)) {
          const size_t len =
              std::min(static_cast<size_t>(batch_size), all_frames.size() - begin);
          wl.model
              ->CountBatch(*wl.dataset, frames_span.subspan(begin, len), resolution,
                           video::ObjectClass::kCar, /*contrast_scale=*/1.0,
                           out_span.subspan(begin, len))
              .CheckOk();
        }
        run.seconds = timer.ElapsedSeconds();
      } else {
        query::FrameOutputSource source(*wl.dataset, *wl.model, video::ObjectClass::kCar);
        source.set_max_batch_size(batch_size);
        source.set_parallel_min_chunk(pool_min_chunk);
        source.set_parallel_min_misses(1);  // Cold run: always engage the pool.
        source.set_thread_pool(&pool);
        util::Timer timer;
        auto counts = source.RawCounts(all_frames, resolution);
        counts.status().CheckOk();
        run.seconds = timer.ElapsedSeconds();
        run.counts = std::move(counts).ValueOrDie();
      }
      return run;
    };
    auto run_best = [&](int64_t batch_size, bool use_pool, bool scalar) {
      RunResult best = run_once(batch_size, use_pool, scalar);
      for (int64_t r = 1; r < repeats; ++r) {
        RunResult next = run_once(batch_size, use_pool, scalar);
        if (next.seconds < best.seconds) best.seconds = next.seconds;
      }
      return best;
    };

    const RunResult scalar = run_best(0, /*use_pool=*/false, /*scalar=*/true);
    const double scalar_fps = static_cast<double>(all_frames.size()) / scalar.seconds;

    std::vector<SweepPoint> sweep;
    // Best cold-path speedup at batch 512 across variants: on a many-core
    // host the pooled end-to-end run wins, on a small machine the direct
    // kernel does. Either way it is the cold path the profiler would take.
    double speedup_at_512 = 0.0;
    double columnar_512_fps = 0.0;
    double pool_512_fps = 0.0;
    for (bool use_pool : {false, true}) {
      for (int64_t batch_size : batch_sizes) {
        RunResult run = run_best(batch_size, use_pool, /*scalar=*/false);
        SweepPoint point;
        point.variant = use_pool ? "columnar+pool" : "columnar";
        point.batch_size = batch_size;
        point.seconds = run.seconds;
        point.fps = static_cast<double>(all_frames.size()) / run.seconds;
        point.speedup = point.fps / scalar_fps;
        point.identical = run.counts == scalar.counts;
        all_identical = all_identical && point.identical;
        if (batch_size == 512) {
          speedup_at_512 = std::max(speedup_at_512, point.speedup);
          (use_pool ? pool_512_fps : columnar_512_fps) = point.fps;
        }
        sweep.push_back(point);
      }
    }
    all_meet_target = all_meet_target && speedup_at_512 >= 3.0;
    const double pool_vs_serial_at_512 = pool_512_fps / columnar_512_fps;
    const bool preset_pool_gate = pool_is_parallel
                                      ? pool_vs_serial_at_512 > pool_gate_threshold
                                      : pool_vs_serial_at_512 >= pool_gate_threshold;
    pool_gate_pass = pool_gate_pass && preset_pool_gate;

    std::printf("--- %s ---\n", wl.label.c_str());
    util::TablePrinter table(
        {"variant", "batch size", "wall s", "frames/s", "vs scalar", "bit-identical"});
    table.AddRow({"aos-scalar", "-", util::FormatDouble(scalar.seconds, 3),
                  util::FormatDouble(scalar_fps, 0), "1.00x", "(reference)"});
    for (const SweepPoint& point : sweep) {
      table.AddRow({point.variant, std::to_string(point.batch_size),
                    util::FormatDouble(point.seconds, 3), util::FormatDouble(point.fps, 0),
                    util::FormatDouble(point.speedup, 2) + "x",
                    point.identical ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::printf("best cold-path speedup at batch 512: %.2fx (target >= 3x)\n",
                speedup_at_512);
    std::printf("columnar+pool vs serial columnar at batch 512: %.3fx (%s: %s %.1fx)\n\n",
                pool_vs_serial_at_512, pool_is_parallel ? "strict" : "parity",
                pool_is_parallel ? ">" : ">=", pool_gate_threshold);

    if (!json_presets.empty()) json_presets += ",\n";
    json_presets += "    {\"preset\": \"" + wl.label + "\",\n";
    json_presets += "     \"scalar_seconds\": " + util::FormatDouble(scalar.seconds, 6) + ",\n";
    json_presets += "     \"scalar_fps\": " + util::FormatDouble(scalar_fps, 1) + ",\n";
    json_presets +=
        "     \"speedup_at_512\": " + util::FormatDouble(speedup_at_512, 3) + ",\n";
    json_presets +=
        "     \"columnar_512_fps\": " + util::FormatDouble(columnar_512_fps, 1) + ",\n";
    json_presets += "     \"pool_512_fps\": " + util::FormatDouble(pool_512_fps, 1) + ",\n";
    json_presets += "     \"pool_vs_serial_at_512\": " +
                    util::FormatDouble(pool_vs_serial_at_512, 3) + ",\n";
    json_presets +=
        std::string("     \"pool_gate_pass\": ") + (preset_pool_gate ? "true" : "false") + ",\n";
    json_presets += "     \"points\": [";
    for (size_t i = 0; i < sweep.size(); ++i) {
      if (i > 0) json_presets += ", ";
      json_presets += "{\"variant\": \"" + sweep[i].variant +
                      "\", \"batch_size\": " + std::to_string(sweep[i].batch_size) +
                      ", \"seconds\": " + util::FormatDouble(sweep[i].seconds, 6) +
                      ", \"fps\": " + util::FormatDouble(sweep[i].fps, 1) +
                      ", \"speedup\": " + util::FormatDouble(sweep[i].speedup, 3) +
                      ", \"identical\": " + (sweep[i].identical ? "true" : "false") + "}";
    }
    json_presets += "]}";
  }

  const bool pass = all_identical && all_meet_target && pool_gate_pass;

  std::ofstream json(out_path, std::ios::trunc);
  if (json) {
    json << "{\n  \"bench\": \"ext_kernel_throughput\",\n"
         << "  \"frames\": " << frames << ",\n"
         << "  \"pool_threads\": " << pool.num_threads() << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"pool_min_chunk\": " << pool_min_chunk << ",\n"
         << "  \"target_speedup_at_512\": 3.0,\n"
         << "  \"pool_gate_mode\": \"" << (pool_is_parallel ? "strict" : "parity") << "\",\n"
         << "  \"pool_gate_threshold\": " << util::FormatDouble(pool_gate_threshold, 2)
         << ",\n"
         << "  \"presets\": [\n"
         << json_presets << "\n  ],\n"
         << "  \"all_counts_identical\": " << (all_identical ? "true" : "false") << ",\n"
         << "  \"pool_gate_pass\": " << (pool_gate_pass ? "true" : "false") << ",\n"
         << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::printf("results written to %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }

  std::printf("counts bit-identical across all variants: %s\n", all_identical ? "yes" : "NO");
  std::printf("batch-512 speedup >= 3x on both presets: %s\n",
              all_meet_target ? "yes" : "NO");
  std::printf("columnar+pool %s serial columnar at batch 512 on both presets: %s\n",
              pool_is_parallel ? "beats" : "within 10% of", pool_gate_pass ? "yes" : "NO");
  return pass ? 0 : 1;
}
