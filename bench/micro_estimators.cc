// Micro-benchmarks (google-benchmark): ns/op of each estimator and baseline
// across sample sizes, supporting §5.3.1's claim that estimation cost is
// negligible next to neural-network inference (tens of ms per intervention
// set at most, versus ~30 ms per frame of model time).

#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/mean_baselines.h"
#include "baselines/stein.h"
#include "core/avg_estimator.h"
#include "core/quantile_estimator.h"
#include "stats/rng.h"

namespace {

using namespace smokescreen;

std::vector<double> MakeSample(int64_t n) {
  stats::Rng rng(42);
  std::vector<double> sample;
  sample.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    sample.push_back(static_cast<double>(rng.NextPoisson(7.0)));
  }
  return sample;
}

constexpr int64_t kPopulation = 1000000;
constexpr double kDelta = 0.05;

void BM_SmokescreenMean(benchmark::State& state) {
  core::SmokescreenMeanEstimator est;
  std::vector<double> sample = MakeSample(state.range(0));
  for (auto _ : state) {
    auto result = est.EstimateMean(sample, kPopulation, kDelta);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SmokescreenMean)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EbgsMean(benchmark::State& state) {
  baselines::EbgsEstimator est;
  std::vector<double> sample = MakeSample(state.range(0));
  for (auto _ : state) {
    auto result = est.EstimateMean(sample, kPopulation, kDelta);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EbgsMean)->Arg(1000);

void BM_HoeffdingMean(benchmark::State& state) {
  baselines::HoeffdingEstimator est;
  std::vector<double> sample = MakeSample(state.range(0));
  for (auto _ : state) {
    auto result = est.EstimateMean(sample, kPopulation, kDelta);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HoeffdingMean)->Arg(1000);

void BM_CltMean(benchmark::State& state) {
  baselines::CltEstimator est;
  std::vector<double> sample = MakeSample(state.range(0));
  for (auto _ : state) {
    auto result = est.EstimateMean(sample, kPopulation, kDelta);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CltMean)->Arg(1000);

void BM_SmokescreenQuantile(benchmark::State& state) {
  core::SmokescreenQuantileEstimator est;
  std::vector<double> sample = MakeSample(state.range(0));
  for (auto _ : state) {
    auto result = est.EstimateQuantile(sample, kPopulation, 0.99, true, kDelta);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SmokescreenQuantile)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SteinQuantile(benchmark::State& state) {
  baselines::SteinQuantileEstimator est;
  std::vector<double> sample = MakeSample(state.range(0));
  for (auto _ : state) {
    auto result = est.EstimateQuantile(sample, kPopulation, 0.99, true, kDelta);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SteinQuantile)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
