// Extension: batched execution throughput — batch-size sweep.
//
// The batched columnar substrate (Detector::CountBatch +
// FrameOutputSource::FillCounts) amortizes per-invocation overhead across a
// whole frame list. The simulated detectors have no such overhead, so — as
// with ext_parallel_profiler — the bench wraps the detector in a latency
// decorator that charges a per-INVOCATION setup cost (weights on device,
// kernel launch, host round-trip; default 200 us) plus a per-FRAME compute
// cost (default 5 us). Scalar execution pays the setup cost on every frame;
// a batch of B frames pays it once per B. The sweep measures frames/sec at
// batch sizes {1, 64, 512, 4096} against the per-frame scalar loop on both
// presets, verifies every run yields bit-identical counts, and requires
// >= 3x throughput at batch 512.
//
// Results are appended to a machine-readable JSON file (BENCH_batched.json
// by default) — the first entry of the bench trajectory for the batched
// execution core.
//
// Usage: ext_batched_throughput [--frames N] [--overhead-us O]
//          [--per-frame-us P] [--out FILE]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace smokescreen;

namespace {

/// Detector decorator charging a fixed setup cost per invocation plus a
/// linear cost per frame, so batching amortizes the former. Counts are
/// delegated unchanged — the decorator only shapes the cost.
class BatchLatencyDetector : public detect::Detector {
 public:
  BatchLatencyDetector(const detect::Detector& inner, int64_t overhead_us, int64_t per_frame_us)
      : inner_(inner), overhead_us_(overhead_us), per_frame_us_(per_frame_us) {}

  const std::string& name() const override { return inner_.name(); }
  uint64_t model_id() const override { return inner_.model_id(); }
  int max_resolution() const override { return inner_.max_resolution(); }
  int resolution_stride() const override { return inner_.resolution_stride(); }

  util::Result<int> CountDetections(const video::VideoDataset& dataset, int64_t frame_index,
                                    int resolution, video::ObjectClass cls,
                                    double contrast_scale) const override {
    Charge(1);
    return inner_.CountDetections(dataset, frame_index, resolution, cls, contrast_scale);
  }

  util::Status CountBatch(const video::VideoDataset& dataset,
                          std::span<const int64_t> frame_indices, int resolution,
                          video::ObjectClass cls, double contrast_scale,
                          std::span<int> out) const override {
    Charge(static_cast<int64_t>(frame_indices.size()));
    return inner_.CountBatch(dataset, frame_indices, resolution, cls, contrast_scale, out);
  }

 private:
  void Charge(int64_t num_frames) const {
    const int64_t us = overhead_us_ + per_frame_us_ * num_frames;
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  const detect::Detector& inner_;
  int64_t overhead_us_;
  int64_t per_frame_us_;
};

struct SweepPoint {
  int64_t batch_size = 0;  // 0 = the scalar per-frame loop.
  double seconds = 0.0;
  double fps = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  // Exports the metrics registry at exit when --metrics-out <path> (stripped
  // here) or $SMOKESCREEN_METRICS_OUT is set.
  bench::MetricsDumpGuard metrics_guard(argc, argv);
  int64_t frames = 2048;
  int64_t overhead_us = 200;
  int64_t per_frame_us = 5;
  std::string out_path = "BENCH_batched.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      *out = *parsed;
    };
    if (arg == "--frames") {
      next_int(&frames);
    } else if (arg == "--overhead-us") {
      next_int(&overhead_us);
    } else if (arg == "--per-frame-us") {
      next_int(&per_frame_us);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ext_batched_throughput [--frames N] [--overhead-us O]"
                   " [--per-frame-us P] [--out FILE]\n");
      return 2;
    }
  }

  std::printf("=== Extension: batched execution throughput (batch-size sweep) ===\n");
  std::printf("frames=%lld, per-invocation overhead=%lld us, per-frame cost=%lld us\n\n",
              static_cast<long long>(frames), static_cast<long long>(overhead_us),
              static_cast<long long>(per_frame_us));

  const std::vector<int64_t> batch_sizes = {1, 64, 512, 4096};
  const int resolution = 320;

  bool all_identical = true;
  bool all_meet_target = true;
  std::string json_presets;

  for (video::ScenePreset preset :
       {video::ScenePreset::kUaDetrac, video::ScenePreset::kNightStreet}) {
    bench::Workload wl = bench::MakeWorkload(preset, "yolov4", frames);
    BatchLatencyDetector model(*wl.model, overhead_us, per_frame_us);

    std::vector<int64_t> all_frames(static_cast<size_t>(wl.dataset->num_frames()));
    std::iota(all_frames.begin(), all_frames.end(), int64_t{0});

    // Scalar baseline: one RawCount (one model invocation) per frame.
    std::vector<int> scalar_counts;
    scalar_counts.reserve(all_frames.size());
    double scalar_seconds = 0.0;
    {
      query::FrameOutputSource source(*wl.dataset, model, video::ObjectClass::kCar);
      util::Timer timer;
      for (int64_t frame : all_frames) {
        auto count = source.RawCount(frame, resolution);
        count.status().CheckOk();
        scalar_counts.push_back(*count);
      }
      scalar_seconds = timer.ElapsedSeconds();
    }
    const double scalar_fps = static_cast<double>(all_frames.size()) / scalar_seconds;

    std::vector<SweepPoint> sweep;
    double speedup_at_512 = 0.0;
    for (int64_t batch_size : batch_sizes) {
      // Fresh source per run: every run pays the full model cost.
      query::FrameOutputSource source(*wl.dataset, model, video::ObjectClass::kCar);
      source.set_max_batch_size(batch_size);
      util::Timer timer;
      auto counts = source.RawCounts(all_frames, resolution);
      counts.status().CheckOk();

      SweepPoint point;
      point.batch_size = batch_size;
      point.seconds = timer.ElapsedSeconds();
      point.fps = static_cast<double>(all_frames.size()) / point.seconds;
      point.speedup = point.fps / scalar_fps;
      point.identical = *counts == scalar_counts;
      all_identical = all_identical && point.identical;
      if (batch_size == 512) speedup_at_512 = point.speedup;
      sweep.push_back(point);
    }
    all_meet_target = all_meet_target && speedup_at_512 >= 3.0;

    std::printf("--- %s ---\n", wl.label.c_str());
    util::TablePrinter table({"batch size", "wall s", "frames/s", "vs scalar", "bit-identical"});
    table.AddRow({"scalar", util::FormatDouble(scalar_seconds, 3),
                  util::FormatDouble(scalar_fps, 0), "1.00x", "(reference)"});
    for (const SweepPoint& point : sweep) {
      table.AddRow({std::to_string(point.batch_size), util::FormatDouble(point.seconds, 3),
                    util::FormatDouble(point.fps, 0),
                    util::FormatDouble(point.speedup, 2) + "x",
                    point.identical ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::printf("speedup at batch 512: %.2fx (target >= 3x)\n\n", speedup_at_512);

    if (!json_presets.empty()) json_presets += ",\n";
    json_presets += "    {\"preset\": \"" + wl.label + "\",\n";
    json_presets += "     \"scalar_seconds\": " + util::FormatDouble(scalar_seconds, 6) + ",\n";
    json_presets += "     \"scalar_fps\": " + util::FormatDouble(scalar_fps, 1) + ",\n";
    json_presets += "     \"speedup_at_512\": " + util::FormatDouble(speedup_at_512, 3) + ",\n";
    json_presets += "     \"points\": [";
    for (size_t i = 0; i < sweep.size(); ++i) {
      if (i > 0) json_presets += ", ";
      json_presets += "{\"batch_size\": " + std::to_string(sweep[i].batch_size) +
                      ", \"seconds\": " + util::FormatDouble(sweep[i].seconds, 6) +
                      ", \"fps\": " + util::FormatDouble(sweep[i].fps, 1) +
                      ", \"speedup\": " + util::FormatDouble(sweep[i].speedup, 3) +
                      ", \"identical\": " + (sweep[i].identical ? "true" : "false") + "}";
    }
    json_presets += "]}";
  }

  const bool pass = all_identical && all_meet_target;

  std::ofstream json(out_path, std::ios::trunc);
  if (json) {
    json << "{\n  \"bench\": \"ext_batched_throughput\",\n"
         << "  \"frames\": " << frames << ",\n"
         << "  \"overhead_us\": " << overhead_us << ",\n"
         << "  \"per_frame_us\": " << per_frame_us << ",\n"
         << "  \"target_speedup_at_512\": 3.0,\n"
         << "  \"presets\": [\n"
         << json_presets << "\n  ],\n"
         << "  \"all_counts_identical\": " << (all_identical ? "true" : "false") << ",\n"
         << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::printf("results written to %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }

  std::printf("counts bit-identical across all batch sizes: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("batch-512 speedup >= 3x on both presets: %s\n", all_meet_target ? "yes" : "NO");
  return pass ? 0 : 1;
}
