// Ablation: which ingredient of Algorithm 1 buys what?
//
// Smokescreen's AVG bound improves on the empirical Bernstein stopping
// algorithm through two separable changes (DESIGN.md / paper §3.2.1):
//   (A) interval CONSTRUCTION: build the confidence interval only for the
//       actual sample size n, instead of the stopping algorithm's union
//       bound over all t (delta_t = c/t^1.1);
//   (B) interval RADIUS: the Hoeffding–Serfling without-replacement radius
//       instead of the empirical Bernstein radius;
// plus the output MAPPING: the harmonic-midpoint (Y = 2*UB*LB/(UB+LB),
// err = (UB-LB)/(UB+LB)) versus the classic sample-mean + radius/LB mapping.
//
// This harness crosses {EB radius, HS radius} x {union-bound delta, single-n
// delta} x {harmonic, sample-mean} on the UA-DETRAC AVG workload and reports
// each variant's average bound and empirical coverage, isolating every
// ingredient's contribution.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/concentration.h"
#include "stats/descriptive.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr int kTrials = 200;
constexpr double kDelta = 0.05;

struct Variant {
  const char* name;
  bool hs_radius;      // true: Hoeffding–Serfling; false: empirical Bernstein.
  bool single_n;       // true: delta at n only; false: EBGS union schedule.
  bool harmonic;       // true: harmonic-midpoint mapping; false: mean + r/LB.
};

}  // namespace

int main() {
  std::printf("=== Ablation: Algorithm 1's ingredients (UA-DETRAC, AVG, f=0.01) ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();
  const int64_t population = wl.dataset->num_frames();
  const int64_t n = stats::FractionToCount(population, 0.01);

  std::vector<Variant> variants = {
      {"EBGS (EB radius + union delta + harmonic)", false, false, true},
      {"+ single-n delta only", false, true, true},
      {"+ HS radius only", true, false, true},
      {"Smokescreen (HS + single-n + harmonic)", true, true, true},
      {"Smokescreen interval, mean+r/LB mapping", true, true, false},
  };

  util::TablePrinter table({"variant", "avg_bound", "coverage_pct"});
  double smokescreen_bound = 0;
  double ebgs_bound = 0;
  stats::Rng rng(0xAB1A7E);

  // Pre-draw the trial samples so every variant sees identical data.
  std::vector<std::vector<double>> samples;
  for (int t = 0; t < kTrials; ++t) {
    auto idx = stats::SampleWithoutReplacement(population, n, rng);
    idx.status().CheckOk();
    std::vector<double> sample;
    for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);
    samples.push_back(std::move(sample));
  }

  for (const Variant& variant : variants) {
    double bound_total = 0;
    int covered = 0;
    for (const std::vector<double>& sample : samples) {
      auto summary = stats::Summarize(sample);
      summary.status().CheckOk();
      double delta_eff = variant.single_n ? kDelta : stats::EbgsDeltaAtStep(kDelta, n);
      double radius =
          variant.hs_radius
              ? stats::HoeffdingSerflingRadius(summary->range, n, population, delta_eff)
              : stats::EmpiricalBernsteinRadius(summary->stddev, summary->range, n, delta_eff);

      double y_approx, err_b;
      if (variant.harmonic) {
        double ub = std::abs(summary->mean) + radius;
        double lb = std::max(0.0, std::abs(summary->mean) - radius);
        if (lb <= 0.0) {
          y_approx = 0.0;
          err_b = 1.0;
        } else {
          y_approx = 2.0 * ub * lb / (ub + lb);
          err_b = (ub - lb) / (ub + lb);
        }
      } else {
        y_approx = summary->mean;
        double lb = std::abs(summary->mean) - radius;
        err_b = lb > 0.0 ? radius / lb : 1e9;
      }
      bound_total += std::min(err_b, 10.0);
      double true_err = std::abs(y_approx - gt->y_true) / gt->y_true;
      if (true_err <= err_b) ++covered;
    }
    double avg_bound = bound_total / kTrials;
    if (std::string(variant.name).find("Smokescreen (") != std::string::npos) {
      smokescreen_bound = avg_bound;
    }
    if (std::string(variant.name).find("EBGS (") != std::string::npos) {
      ebgs_bound = avg_bound;
    }
    table.AddRow({variant.name, util::FormatDouble(avg_bound),
                  util::FormatPercent(static_cast<double>(covered) / kTrials)});
  }
  table.Print(std::cout);

  std::printf(
      "\nBoth ingredients contribute: the full Smokescreen bound is %.1f%%\n"
      "tighter than EBGS while every variant keeps >= 95%% coverage; the\n"
      "harmonic mapping further beats the mean+radius/LB mapping.\n",
      (ebgs_bound - smokescreen_bound) / smokescreen_bound * 100.0);
  return 0;
}
