// Serving-layer scaling: what does the engine::Runtime's cross-session
// sharing buy under concurrent clients?
//
// BlazeIt and NoScope place the serving win in sharing inference across
// queries over the same video; Smokescreen-as-a-service (§3.1) has the same
// shape — many administrators profiling the same camera feed. This bench
// pits two deployments against each other at {1, 4, 16} concurrent clients
// on both §5.1 presets:
//
//   isolated — one private workload per client (the "N single-tenant
//              processes" baseline): every client pays its own model
//              invocations into its own cold output cache.
//   shared   — one Runtime workload handle for everyone: the source's
//              in-flight claims make cross-session computation exactly-once,
//              so client B rides on the misses client A already paid for.
//
// Each client runs the four-aggregate admin workload (AVG/SUM/COUNT/MAX over
// the same seed) and profiles a small candidate grid. The detector is
// wrapped in a busy-spin cost model (default 50us/frame, flag-tunable) so
// invocations carry a realistic CPU-bound price — busy-wait, NOT sleep,
// because sleeping threads would overlap for free and hide the contention a
// real inference client creates.
//
// Checks (exit 1 on failure):
//   * shared-vs-isolated profiles are bit-identical at every client count;
//   * shared cold throughput at 16 clients is >= 2x the isolated baseline;
//   * with the ProfileCache primed, repeat requests generate nothing.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/candidate_design.h"
#include "detect/models.h"
#include "engine/runtime.h"
#include "engine/session.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "video/presets.h"

using namespace smokescreen;

namespace {

// SimYoloV4 with a busy-spin per-frame inference cost. Counts are untouched,
// so every determinism/bit-identity invariant carries over; only misses that
// actually reach the model pay the spin (the whole point of sharing).
class CostModelYolo : public detect::Detector {
 public:
  explicit CostModelYolo(int64_t per_frame_ns) : per_frame_ns_(per_frame_ns) {}

  const std::string& name() const override { return inner_.name(); }
  uint64_t model_id() const override { return inner_.model_id(); }
  int max_resolution() const override { return inner_.max_resolution(); }
  int resolution_stride() const override { return inner_.resolution_stride(); }

  util::Result<int> CountDetections(const video::VideoDataset& dataset, int64_t frame_index,
                                    int resolution, video::ObjectClass cls,
                                    double contrast_scale) const override {
    Spin(1);
    return inner_.CountDetections(dataset, frame_index, resolution, cls, contrast_scale);
  }

  util::Status CountBatch(const video::VideoDataset& dataset,
                          std::span<const int64_t> frame_indices, int resolution,
                          video::ObjectClass cls, double contrast_scale,
                          std::span<int> out) const override {
    Spin(static_cast<int64_t>(frame_indices.size()));
    return inner_.CountBatch(dataset, frame_indices, resolution, cls, contrast_scale, out);
  }

 private:
  void Spin(int64_t frames) const {
    if (per_frame_ns_ <= 0) return;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(per_frame_ns_ * frames);
    while (std::chrono::steady_clock::now() < until) {
    }
  }

  detect::SimYoloV4 inner_;
  int64_t per_frame_ns_;
};

// Builds one adopted workload (dataset + cost-model detector + prior) for
// `preset`. Adopted handles never enter the runtime's share map, so "shared"
// vs "isolated" is exactly "one handle for all clients" vs "one per client".
engine::WorkloadHandle AdoptArm(engine::Runtime& runtime, video::ScenePreset preset,
                                int64_t frames, int64_t per_frame_us,
                                const std::string& label) {
  auto scaled = video::MakePresetScaled(preset, frames);
  scaled.status().CheckOk();
  auto dataset = std::make_unique<video::VideoDataset>(std::move(scaled).ValueOrDie());
  auto detector = std::make_unique<CostModelYolo>(per_frame_us * 1000);
  detect::SimYoloV4 person;
  detect::SimMtcnn face;
  auto prior = detect::ClassPriorIndex::Build(*dataset, person, face);
  prior.status().CheckOk();
  auto workload = runtime.AdoptWorkload(
      label, std::move(dataset), std::move(detector),
      std::make_unique<detect::ClassPriorIndex>(std::move(prior).ValueOrDie()),
      video::ObjectClass::kCar);
  workload.status().CheckOk();
  return *workload;
}

const query::AggregateFunction kAdminAggregates[] = {
    query::AggregateFunction::kAvg, query::AggregateFunction::kSum,
    query::AggregateFunction::kCount, query::AggregateFunction::kMax};

engine::SessionConfig ClientConfig(query::AggregateFunction aggregate, bool use_cache) {
  engine::SessionConfig config;
  config.spec.aggregate = aggregate;
  config.seed = 2717;
  config.use_profile_cache = use_cache;
  config.profiler.use_correction_set = false;
  config.profiler.early_stop = false;
  return config;
}

struct PassResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  int64_t invocations = 0;  // Summed over every workload the pass touched.
  core::ProfileHandle avg_profile;  // One client's AVG profile (identity check).
};

// Runs `clients` concurrent clients, each profiling all four aggregates
// against its assigned workload handle. Invocation accounting is the DELTA
// across the pass, so warm reruns report what the pass itself paid.
PassResult RunPass(engine::Runtime& runtime,
                   const std::vector<engine::WorkloadHandle>& per_client,
                   const std::vector<degrade::InterventionSet>& grid, bool use_cache) {
  std::vector<int64_t> before;
  for (const auto& handle : per_client) before.push_back(handle->source().model_invocations());

  const int clients = static_cast<int>(per_client.size());
  std::vector<core::ProfileHandle> avg_profiles(clients);
  std::vector<std::thread> threads;
  util::Timer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (query::AggregateFunction aggregate : kAdminAggregates) {
        auto session = runtime.StartSession(per_client[c], ClientConfig(aggregate, use_cache));
        session.status().CheckOk();
        auto profile = (*session)->Profile(grid);
        profile.status().CheckOk();
        if (aggregate == query::AggregateFunction::kAvg) avg_profiles[c] = *profile;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  PassResult result;
  result.seconds = timer.ElapsedSeconds();
  result.requests_per_sec =
      static_cast<double>(clients * std::size(kAdminAggregates)) / result.seconds;
  for (int c = 0; c < clients; ++c) {
    // Shared passes hand the same handle to every client: count it once.
    if (c == 0 || per_client[c].get() != per_client[0].get()) {
      result.invocations += per_client[c]->source().model_invocations() - before[c];
    }
  }
  result.avg_profile = avg_profiles[0];
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::MetricsDumpGuard metrics_guard(argc, argv);
  int64_t frames = 2000;
  int64_t per_frame_us = 50;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      frames = *parsed;
    } else if (arg == "--per-frame-us" && i + 1 < argc) {
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      per_frame_us = *parsed;
    } else {
      std::fprintf(stderr,
                   "usage: ext_serving_throughput [--frames N] [--per-frame-us N]"
                   " [--metrics-out P]\n");
      return 2;
    }
  }

  std::printf("=== Serving throughput: shared runtime vs isolated clients ===\n");
  std::printf("(%lld frames/preset, %lldus busy-spin per model frame, 4 queries/client)\n\n",
              static_cast<long long>(frames), static_cast<long long>(per_frame_us));

  auto runtime = engine::Runtime::Create({});
  runtime.status().CheckOk();

  // Small but two-knob grid: 2 fractions x 2 resolutions.
  std::vector<degrade::InterventionSet> grid;
  for (double fraction : {0.05, 0.10}) {
    for (int resolution : {320, 608}) {
      degrade::InterventionSet iv;
      iv.sample_fraction = fraction;
      iv.resolution = resolution;
      grid.push_back(iv);
    }
  }

  const video::ScenePreset presets[] = {video::ScenePreset::kUaDetrac,
                                        video::ScenePreset::kNightStreet};
  const int client_counts[] = {1, 4, 16};
  bool ok = true;

  for (video::ScenePreset preset : presets) {
    const std::string preset_name = video::ScenePresetName(preset);
    util::TablePrinter table({"clients", "arm", "cold s", "req/s", "model invocations",
                              "warm s", "speedup vs isolated"});
    for (int clients : client_counts) {
      // Fresh workloads per cell so every cold pass is genuinely cold.
      std::vector<engine::WorkloadHandle> isolated;
      for (int c = 0; c < clients; ++c) {
        isolated.push_back(AdoptArm(**runtime, preset, frames, per_frame_us,
                                    preset_name + "/iso" + std::to_string(clients) + "." +
                                        std::to_string(c)));
      }
      std::vector<engine::WorkloadHandle> shared(
          clients, AdoptArm(**runtime, preset, frames, per_frame_us,
                            preset_name + "/shared" + std::to_string(clients)));

      PassResult iso_cold = RunPass(**runtime, isolated, grid, /*use_cache=*/false);
      PassResult iso_warm = RunPass(**runtime, isolated, grid, /*use_cache=*/false);
      PassResult shr_cold = RunPass(**runtime, shared, grid, /*use_cache=*/false);
      PassResult shr_warm = RunPass(**runtime, shared, grid, /*use_cache=*/false);
      double speedup = shr_cold.requests_per_sec / iso_cold.requests_per_sec;

      table.AddRow({std::to_string(clients), "isolated",
                    util::FormatDouble(iso_cold.seconds, 3),
                    util::FormatDouble(iso_cold.requests_per_sec, 1),
                    std::to_string(iso_cold.invocations),
                    util::FormatDouble(iso_warm.seconds, 3), "1.0"});
      table.AddRow({std::to_string(clients), "shared",
                    util::FormatDouble(shr_cold.seconds, 3),
                    util::FormatDouble(shr_cold.requests_per_sec, 1),
                    std::to_string(shr_cold.invocations),
                    util::FormatDouble(shr_warm.seconds, 3),
                    util::FormatDouble(speedup, 2) + "x"});

      // Sharing must not change a single bit of any client's answer.
      if (!engine::ProfilesBitIdentical(*iso_cold.avg_profile, *shr_cold.avg_profile)) {
        std::fprintf(stderr, "%s @%d clients: shared profile diverged from isolated\n",
                     preset_name.c_str(), clients);
        ok = false;
      }
      // The shared arm pays ONE client's bill regardless of the fan-out.
      if (shr_cold.invocations != iso_cold.invocations / clients) {
        std::fprintf(stderr,
                     "%s @%d clients: shared paid %lld invocations, expected %lld\n",
                     preset_name.c_str(), clients,
                     static_cast<long long>(shr_cold.invocations),
                     static_cast<long long>(iso_cold.invocations / clients));
        ok = false;
      }
      if (clients == 16 && speedup < 2.0) {
        std::fprintf(stderr, "%s @16 clients: shared speedup %.2fx < 2x floor\n",
                     preset_name.c_str(), speedup);
        ok = false;
      }
    }
    std::printf("--- %s ---\n", preset_name.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }

  // ProfileCache arm: prime the four profiles serially, then 16 clients of
  // repeat requests must be served from memory with zero generation.
  {
    engine::WorkloadHandle cached =
        AdoptArm(**runtime, video::ScenePreset::kUaDetrac, frames, per_frame_us, "cache-arm");
    std::vector<engine::WorkloadHandle> solo{cached};
    RunPass(**runtime, solo, grid, /*use_cache=*/true);  // Prime.
    const int64_t hits_before = (*runtime)->profile_cache().hits();
    const int64_t invocations_before = cached->source().model_invocations();
    std::vector<engine::WorkloadHandle> repeat(16, cached);
    PassResult warm = RunPass(**runtime, repeat, grid, /*use_cache=*/true);
    const int64_t hits = (*runtime)->profile_cache().hits() - hits_before;
    std::printf("profile cache: 64 repeat requests in %s s, %lld hits, %lld invocations\n",
                util::FormatDouble(warm.seconds, 3).c_str(), static_cast<long long>(hits),
                static_cast<long long>(cached->source().model_invocations() -
                                       invocations_before));
    if (hits != 64 || cached->source().model_invocations() != invocations_before) {
      std::fprintf(stderr, "profile cache failed to serve all repeat requests\n");
      ok = false;
    }
  }

  std::printf("%s\n", ok ? "serving checks passed" : "serving checks FAILED");
  return ok ? 0 : 1;
}
