// Table 1: the scenario / technical-problem / novelty matrix, demonstrated
// end-to-end rather than merely asserted:
//
//   row 1 (random interventions, AVG/SUM/COUNT): the improved EBGS +
//         Hoeffding-Serfling bound is valid AND tighter than EBGS;
//   row 1 (random interventions, MAX/MIN): the hypergeometric-normal
//         quantile bound is valid AND tighter than Stein;
//   row 2 (non-random interventions): the basic bound loses validity, the
//         profile-repair bound restores it.

#include <cstdio>
#include <iostream>

#include "baselines/mean_baselines.h"
#include "baselines/stein.h"
#include "bench/bench_common.h"
#include "stats/sampling.h"
#include "core/avg_estimator.h"
#include "core/quantile_estimator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr int kTrials = 50;
constexpr double kDelta = 0.05;

}  // namespace

int main() {
  std::printf("=== Table 1: scenario / problem / novelty, demonstrated ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
  const int64_t population = wl.dataset->num_frames();
  stats::Rng rng(0x7AB1E);
  util::TablePrinter table({"scenario", "claim", "measured", "verdict"});

  // ---- Row 1a: random interventions, mean family. -------------------------
  {
    query::QuerySpec spec;
    spec.aggregate = query::AggregateFunction::kAvg;
    auto gt = query::ComputeGroundTruth(*wl.source, spec);
    gt.status().CheckOk();
    core::SmokescreenMeanEstimator ours;
    baselines::EbgsEstimator ebgs;
    int valid = 0;
    double ours_avg = 0, ebgs_avg = 0;
    int64_t n = stats::FractionToCount(population, 0.01);
    for (int t = 0; t < kTrials; ++t) {
      auto idx = stats::SampleWithoutReplacement(population, n, rng);
      idx.status().CheckOk();
      std::vector<double> sample;
      for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);
      auto r_ours = ours.EstimateMean(sample, population, kDelta);
      auto r_ebgs = ebgs.EstimateMean(sample, population, kDelta);
      r_ours.status().CheckOk();
      r_ebgs.status().CheckOk();
      if (query::RelativeError(r_ours->y_approx, gt->y_true) <= r_ours->err_b) ++valid;
      ours_avg += r_ours->err_b;
      ebgs_avg += r_ebgs->err_b;
    }
    ours_avg /= kTrials;
    ebgs_avg /= kTrials;
    bool pass = valid >= kTrials * 0.95 && ours_avg < ebgs_avg;
    table.AddRow({"random / AVG-SUM-COUNT", "valid bound, tighter than EBGS",
                  "valid " + std::to_string(valid) + "/" + std::to_string(kTrials) +
                      ", bound " + util::FormatDouble(ours_avg) + " vs EBGS " +
                      util::FormatDouble(ebgs_avg),
                  pass ? "PASS" : "FAIL"});
  }

  // ---- Row 1b: random interventions, MAX/MIN. ------------------------------
  {
    query::QuerySpec spec;
    spec.aggregate = query::AggregateFunction::kMax;
    auto gt = query::ComputeGroundTruth(*wl.source, spec);
    gt.status().CheckOk();
    core::SmokescreenQuantileEstimator ours;
    baselines::SteinQuantileEstimator stein;
    int valid = 0;
    double ours_avg = 0, stein_avg = 0;
    int64_t n = stats::FractionToCount(population, 0.01);
    for (int t = 0; t < kTrials; ++t) {
      auto idx = stats::SampleWithoutReplacement(population, n, rng);
      idx.status().CheckOk();
      std::vector<double> sample;
      for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);
      auto r_ours = ours.EstimateQuantile(sample, population, 0.99, true, kDelta);
      auto r_stein = stein.EstimateQuantile(sample, population, 0.99, true, kDelta);
      r_ours.status().CheckOk();
      r_stein.status().CheckOk();
      if (bench::RealizedError(spec, *gt, r_ours->y_approx) <= r_ours->err_b) ++valid;
      ours_avg += r_ours->err_b;
      stein_avg += r_stein->err_b;
    }
    ours_avg /= kTrials;
    stein_avg /= kTrials;
    bool pass = valid >= kTrials * 0.95 && ours_avg < stein_avg;
    table.AddRow({"random / MAX-MIN", "valid rank bound, tighter than Stein",
                  "valid " + std::to_string(valid) + "/" + std::to_string(kTrials) +
                      ", bound " + util::FormatDouble(ours_avg) + " vs Stein " +
                      util::FormatDouble(stein_avg),
                  pass ? "PASS" : "FAIL"});
  }

  // ---- Row 2: non-random interventions + profile repair. -------------------
  {
    query::QuerySpec spec;
    spec.aggregate = query::AggregateFunction::kAvg;
    auto gt = query::ComputeGroundTruth(*wl.source, spec);
    gt.status().CheckOk();
    degrade::InterventionSet iv;
    iv.sample_fraction = 0.1;
    iv.resolution = 192;
    iv.restricted.Add(video::ObjectClass::kPerson);
    auto correction = core::BuildCorrectionSet(
        *wl.source, spec, stats::FractionToCount(population, 0.04), kDelta, rng);
    correction.status().CheckOk();
    int basic_valid = 0, repaired_valid = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto result = core::ResultErrorEst(*wl.source, *wl.prior, spec, iv, kDelta, rng);
      result.status().CheckOk();
      auto repaired = core::RepairErrorBound(spec, *result, *correction);
      repaired.status().CheckOk();
      double true_err = query::RelativeError(result->estimate.y_approx, gt->y_true);
      if (result->estimate.err_b >= true_err) ++basic_valid;
      if (*repaired >= true_err) ++repaired_valid;
    }
    bool pass = basic_valid < kTrials / 2 && repaired_valid >= kTrials * 0.95;
    table.AddRow({"non-random / repair", "basic bound breaks, repaired bound holds",
                  "basic valid " + std::to_string(basic_valid) + "/" +
                      std::to_string(kTrials) + ", repaired valid " +
                      std::to_string(repaired_valid) + "/" + std::to_string(kTrials),
                  pass ? "PASS" : "FAIL"});
  }

  table.Print(std::cout);
  std::printf("\nEach Table-1 cell exercised end-to-end on UA-DETRAC + SimYoloV4.\n");
  return 0;
}
