// Headline claims (abstract / §5.2.1):
//   (1) "our upper bound estimation of analytical error is up to 155%
//       tighter" than the previous state of the art;
//   (2) "Smokescreen enables 88% more accurate tradeoffs" than a method
//       based on previously-known approaches.
//
// (1) is measured as max over the Figure-4 grid of
//     (baseline_bound - smokescreen_bound) / smokescreen_bound
// against the reliable baselines (EBGS / Hoeffding / Hoeffding-Serfling /
// Stein; CLT is excluded because it is not a valid 95% bound — Figure 5).
//
// (2) compares the degradation an administrator actually achieves: for an
// error budget tau, each method picks the smallest sample fraction whose
// BOUND is <= tau; the oracle picks using the TRUE error. The tradeoff
// excess is (f_method - f_oracle) / f_oracle, and the improvement is
//     (excess_baseline - excess_smokescreen) / excess_baseline.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "baselines/mean_baselines.h"
#include "baselines/stein.h"
#include "bench/bench_common.h"
#include "core/avg_estimator.h"
#include "core/quantile_estimator.h"
#include "core/tradeoff.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr double kDelta = 0.05;
constexpr int kTrials = 60;

struct Sweep {
  std::vector<std::pair<double, double>> smk;    // (fraction, avg bound).
  std::vector<std::pair<double, double>> base;   // Best reliable baseline.
  std::vector<std::pair<double, double>> truth;  // (fraction, avg true error).
};

/// Builds bound/truth sweeps over sample fractions for one workload+aggregate.
Sweep BuildSweep(bench::Workload& wl, query::AggregateFunction aggregate,
                 const std::vector<double>& fractions, stats::Rng& rng) {
  query::QuerySpec spec;
  spec.aggregate = aggregate;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();
  const int64_t population = wl.dataset->num_frames();

  core::SmokescreenMeanEstimator smk_mean;
  core::SmokescreenQuantileEstimator smk_quant;
  baselines::EbgsEstimator ebgs;
  baselines::HoeffdingEstimator hoeffding;
  baselines::HoeffdingSerflingEstimator hs;
  baselines::SteinQuantileEstimator stein;

  Sweep sweep;
  for (double f : fractions) {
    int64_t n = std::max<int64_t>(5, stats::FractionToCount(population, f));
    double b_smk = 0, b_base = 0, t_err = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto idx = stats::SampleWithoutReplacement(population, n, rng);
      idx.status().CheckOk();
      std::vector<double> sample;
      for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);

      if (query::IsMeanFamily(aggregate)) {
        auto r_smk = smk_mean.EstimateMean(sample, population, kDelta);
        r_smk.status().CheckOk();
        double best_base = std::min(
            {std::min(ebgs.EstimateMean(sample, population, kDelta)->err_b, 10.0),
             std::min(hoeffding.EstimateMean(sample, population, kDelta)->err_b, 10.0),
             std::min(hs.EstimateMean(sample, population, kDelta)->err_b, 10.0)});
        b_smk += std::min(r_smk->err_b, 10.0);
        b_base += best_base;
        double scale =
            aggregate == query::AggregateFunction::kAvg ? 1.0 : static_cast<double>(population);
        t_err += bench::RealizedError(spec, *gt, r_smk->y_approx * scale);
      } else {
        auto r_smk = smk_quant.EstimateQuantile(sample, population, 0.99, true, kDelta);
        auto r_stein = stein.EstimateQuantile(sample, population, 0.99, true, kDelta);
        r_smk.status().CheckOk();
        r_stein.status().CheckOk();
        b_smk += std::min(r_smk->err_b, 10.0);
        b_base += std::min(r_stein->err_b, 10.0);
        t_err += bench::RealizedError(spec, *gt, r_smk->y_approx);
      }
    }
    sweep.smk.emplace_back(f, b_smk / kTrials);
    sweep.base.emplace_back(f, b_base / kTrials);
    sweep.truth.emplace_back(f, t_err / kTrials);
  }
  return sweep;
}

}  // namespace

int main() {
  std::printf("=== Headline claims: bound tightness and tradeoff accuracy ===\n\n");

  std::vector<double> fractions;
  for (double f = 0.005; f <= 0.1001; f += 0.005) fractions.push_back(f);

  double max_tightness = 0;
  std::string tightness_where;
  double total_improvement = 0;
  int improvement_cells = 0;

  util::TablePrinter table({"workload", "aggregate", "max_tighter_pct", "tradeoff_improve_pct"});

  struct Panel {
    video::ScenePreset preset;
    const char* detector;
    query::AggregateFunction aggregate;
  };
  std::vector<Panel> panels = {
      {video::ScenePreset::kNightStreet, "maskrcnn", query::AggregateFunction::kAvg},
      {video::ScenePreset::kNightStreet, "maskrcnn", query::AggregateFunction::kMax},
      {video::ScenePreset::kUaDetrac, "yolov4", query::AggregateFunction::kAvg},
      {video::ScenePreset::kUaDetrac, "yolov4", query::AggregateFunction::kSum},
      {video::ScenePreset::kUaDetrac, "yolov4", query::AggregateFunction::kMax},
  };

  for (const Panel& panel : panels) {
    bench::Workload wl = bench::MakeWorkload(panel.preset, panel.detector);
    stats::Rng rng(stats::HashCombine(
        {static_cast<uint64_t>(panel.aggregate), wl.dataset->dataset_id()}));
    Sweep sweep = BuildSweep(wl, panel.aggregate, fractions, rng);

    // (1) Tightness.
    double panel_tightness = 0;
    for (size_t i = 0; i < sweep.smk.size(); ++i) {
      if (sweep.base[i].second < 10.0 && sweep.smk[i].second > 0) {
        double ratio = (sweep.base[i].second - sweep.smk[i].second) / sweep.smk[i].second;
        panel_tightness = std::max(panel_tightness, ratio);
        if (ratio > max_tightness) {
          max_tightness = ratio;
          tightness_where = wl.label + "/" + query::AggregateFunctionName(panel.aggregate);
        }
      }
    }

    // (2) Tradeoff accuracy over a range of error budgets.
    double improvement_sum = 0;
    int improvement_count = 0;
    for (double tau : {0.05, 0.08, 0.1, 0.15, 0.2, 0.3}) {
      auto ours = core::TradeoffExcess(sweep.smk, sweep.truth, tau);
      auto base = core::TradeoffExcess(sweep.base, sweep.truth, tau);
      if (!ours.ok() || !base.ok()) continue;  // Budget unreachable in sweep.
      if (*base <= 0) continue;                // Baseline already oracle-tight.
      double improvement = (*base - *ours) / *base;
      improvement_sum += improvement;
      ++improvement_count;
    }
    double avg_improvement =
        improvement_count > 0 ? improvement_sum / improvement_count : 0.0;
    total_improvement += avg_improvement;
    improvement_cells += improvement_count > 0 ? 1 : 0;

    table.AddRow({wl.label, query::AggregateFunctionName(panel.aggregate),
                  util::FormatDouble(panel_tightness * 100.0, 1),
                  util::FormatDouble(avg_improvement * 100.0, 1)});
  }

  table.Print(std::cout);

  std::printf(
      "\nHeadline (1): error bound up to %.1f%% tighter than the best reliable\n"
      "baseline (at %s). Paper claims up to 154.70%%.\n",
      max_tightness * 100.0, tightness_where.c_str());
  std::printf(
      "Headline (2): tradeoffs on average %.1f%% more accurate than the\n"
      "baseline-driven choice (excess degradation shaved). Paper claims 88%%.\n",
      improvement_cells > 0 ? total_improvement / improvement_cells * 100.0 : 0.0);
  return 0;
}
