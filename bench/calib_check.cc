// Scratch calibration harness (not an experiment binary): prints preset and
// detector statistics so calibrations can be compared against the paper's
// reported numbers.

#include <cstdio>

#include "core/avg_estimator.h"
#include "core/estimator_api.h"
#include "detect/class_prior_index.h"
#include "detect/models.h"
#include "query/executor.h"
#include "query/output_source.h"
#include "video/presets.h"

using namespace smokescreen;

int main() {
  for (auto preset : {video::ScenePreset::kNightStreet, video::ScenePreset::kUaDetrac}) {
    auto ds = video::MakePreset(preset);
    ds.status().CheckOk();
    const auto& d = *ds;
    std::printf("== %s: %lld frames, %zu seqs\n", d.name().c_str(),
                static_cast<long long>(d.num_frames()), d.sequences().size());
    std::printf("  GT: cars/frame=%.3f person-frac=%.4f face-frac=%.4f\n",
                d.GtMeanCount(video::ObjectClass::kCar),
                d.GtContainmentFraction(video::ObjectClass::kPerson),
                d.GtContainmentFraction(video::ObjectClass::kFace));
    auto yolo = detect::MakeSimYoloV4();
    auto mtcnn = detect::MakeSimMtcnn();
    auto prior = detect::ClassPriorIndex::Build(d, **(&yolo), **(&mtcnn));
    prior.status().CheckOk();
    std::printf("  prior: person=%.4f face=%.4f car=%.4f\n",
                prior->ContainmentFraction(video::ObjectClass::kPerson),
                prior->ContainmentFraction(video::ObjectClass::kFace),
                prior->ContainmentFraction(video::ObjectClass::kCar));

    // Resolution sweep of true AVG error (Fig 3 shape).
    query::QuerySpec spec;
    spec.aggregate = query::AggregateFunction::kAvg;
    query::FrameOutputSource source(d, *yolo, video::ObjectClass::kCar);
    auto gt = query::ComputeGroundTruth(source, spec);
    gt.status().CheckOk();
    std::printf("  y_true(avg cars, yolo@max) = %.4f\n", gt->y_true);
    for (int res : {64, 128, 192, 256, 320, 384, 448, 512, 576, 608}) {
      auto out = source.AllOutputs(spec, res);
      out.status().CheckOk();
      double sum = 0;
      for (double v : *out) sum += v;
      double avg = sum / static_cast<double>(out->size());
      std::printf("    res %3d: avg=%.4f rel_err=%.4f\n", res, avg,
                  query::RelativeError(avg, gt->y_true));
    }
  }
  return 0;
}
