// Figure 4: true relative error of the estimated query result and the error
// bound computed by Smokescreen and the baselines, for each aggregate query
// type on both datasets, as the reduced-frame-sampling fraction varies.
// Every cell is the average of 100 trials (the paper's protocol).
//
// Panels (matching §5.1): night-street uses Mask R-CNN, UA-DETRAC uses
// YOLOv4. Mean-family baselines: EBGS, Hoeffding, Hoeffding-Serfling, CLT.
// MAX baseline: Stein. The sweep ends at the paper's per-panel fractions
// (night-street: 0.1 / 0.1 / 0.05 / 0.0015; UA-DETRAC: 0.06 / 0.06 / 0.02 /
// 0.003 for AVG / SUM / MAX / COUNT).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "baselines/mean_baselines.h"
#include "baselines/stein.h"
#include "bench/bench_common.h"
#include "core/avg_estimator.h"
#include "core/quantile_estimator.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr int kTrials = 100;
constexpr double kDelta = 0.05;
// Bounds can be +infinity (vacuous); they are clamped here for averaging.
constexpr double kBoundCap = 10.0;

double Clamp(double bound) { return std::min(bound, kBoundCap); }

struct Tightness {
  double max_ratio = 0.0;  // (baseline - ours) / ours.
  std::string where;
};

void RunMeanPanel(bench::Workload& wl, query::AggregateFunction aggregate, double end_fraction,
                  Tightness& tightness) {
  query::QuerySpec spec;
  spec.aggregate = aggregate;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();

  core::SmokescreenMeanEstimator ours;
  baselines::EbgsEstimator ebgs;
  baselines::HoeffdingEstimator hoeffding;
  baselines::HoeffdingSerflingEstimator hs;
  baselines::CltEstimator clt;

  std::printf("\n-- %s  %s (100-trial averages; bounds capped at %.0f) --\n", wl.label.c_str(),
              query::AggregateFunctionName(aggregate), kBoundCap);
  util::TablePrinter table({"fraction", "true_err", "smk_bound", "ebgs", "hoeffding",
                            "hoeff-serf", "clt"});

  const int64_t population = wl.dataset->num_frames();
  stats::Rng rng(stats::HashCombine({static_cast<uint64_t>(aggregate), static_cast<uint64_t>(population)}));
  for (int step = 1; step <= 8; ++step) {
    double fraction = end_fraction * static_cast<double>(step) / 8.0;
    int64_t n = std::max<int64_t>(10, stats::FractionToCount(population, fraction));

    double true_err = 0, b_ours = 0, b_ebgs = 0, b_h = 0, b_hs = 0, b_clt = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto idx = stats::SampleWithoutReplacement(population, n, rng);
      idx.status().CheckOk();
      std::vector<double> sample;
      sample.reserve(idx->size());
      for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);

      auto r_ours = ours.EstimateMean(sample, population, kDelta);
      auto r_ebgs = ebgs.EstimateMean(sample, population, kDelta);
      auto r_h = hoeffding.EstimateMean(sample, population, kDelta);
      auto r_hs = hs.EstimateMean(sample, population, kDelta);
      auto r_clt = clt.EstimateMean(sample, population, kDelta);
      r_ours.status().CheckOk();

      double scale = aggregate == query::AggregateFunction::kAvg
                         ? 1.0
                         : static_cast<double>(population);
      true_err += bench::RealizedError(spec, *gt, r_ours->y_approx * scale);
      b_ours += Clamp(r_ours->err_b);
      b_ebgs += Clamp(r_ebgs->err_b);
      b_h += Clamp(r_h->err_b);
      b_hs += Clamp(r_hs->err_b);
      b_clt += Clamp(r_clt->err_b);
    }
    true_err /= kTrials;
    b_ours /= kTrials;
    b_ebgs /= kTrials;
    b_h /= kTrials;
    b_hs /= kTrials;
    b_clt /= kTrials;
    table.AddRow({util::FormatDouble(fraction, 5), util::FormatDouble(true_err),
                  util::FormatDouble(b_ours), util::FormatDouble(b_ebgs),
                  util::FormatDouble(b_h), util::FormatDouble(b_hs),
                  util::FormatDouble(b_clt)});

    // Track tightness against the reliable baselines (CLT excluded: no
    // finite-sample guarantee).
    for (double base : {b_ebgs, b_h, b_hs}) {
      if (base < kBoundCap && b_ours > 0) {
        double ratio = (base - b_ours) / b_ours;
        if (ratio > tightness.max_ratio) {
          tightness.max_ratio = ratio;
          tightness.where = wl.label + "/" +
                            query::AggregateFunctionName(aggregate) + " f=" +
                            util::FormatDouble(fraction, 5);
        }
      }
    }
  }
  table.Print(std::cout);
}

void RunMaxPanel(bench::Workload& wl, double end_fraction, Tightness& tightness) {
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kMax;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();

  core::SmokescreenQuantileEstimator ours;
  baselines::SteinQuantileEstimator stein;

  std::printf("\n-- %s  MAX/0.99-quantile (100-trial averages) --\n", wl.label.c_str());
  util::TablePrinter table({"fraction", "true_err", "smk_bound", "stein"});
  const int64_t population = wl.dataset->num_frames();
  stats::Rng rng(stats::HashCombine({0xA3, static_cast<uint64_t>(population)}));
  for (int step = 1; step <= 8; ++step) {
    double fraction = end_fraction * static_cast<double>(step) / 8.0;
    int64_t n = std::max<int64_t>(10, stats::FractionToCount(population, fraction));
    double true_err = 0, b_ours = 0, b_stein = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto idx = stats::SampleWithoutReplacement(population, n, rng);
      idx.status().CheckOk();
      std::vector<double> sample;
      for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);
      auto r_ours = ours.EstimateQuantile(sample, population, 0.99, true, kDelta);
      auto r_stein = stein.EstimateQuantile(sample, population, 0.99, true, kDelta);
      r_ours.status().CheckOk();
      r_stein.status().CheckOk();
      true_err += bench::RealizedError(spec, *gt, r_ours->y_approx);
      b_ours += Clamp(r_ours->err_b);
      b_stein += Clamp(r_stein->err_b);
    }
    true_err /= kTrials;
    b_ours /= kTrials;
    b_stein /= kTrials;
    table.AddRow({util::FormatDouble(fraction, 5), util::FormatDouble(true_err),
                  util::FormatDouble(b_ours), util::FormatDouble(b_stein)});
    if (b_stein < kBoundCap && b_ours > 0) {
      double ratio = (b_stein - b_ours) / b_ours;
      if (ratio > tightness.max_ratio) {
        tightness.max_ratio = ratio;
        tightness.where = wl.label + "/MAX f=" + util::FormatDouble(fraction, 5);
      }
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::printf("=== Figure 4: error bounds vs sample fraction, all aggregates ===\n");

  Tightness tightness;
  {
    bench::Workload night = bench::MakeWorkload(video::ScenePreset::kNightStreet, "maskrcnn");
    RunMeanPanel(night, query::AggregateFunction::kAvg, 0.10, tightness);
    RunMeanPanel(night, query::AggregateFunction::kSum, 0.10, tightness);
    RunMaxPanel(night, 0.05, tightness);
    RunMeanPanel(night, query::AggregateFunction::kCount, 0.0015, tightness);
  }
  {
    bench::Workload detrac = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
    RunMeanPanel(detrac, query::AggregateFunction::kAvg, 0.06, tightness);
    RunMeanPanel(detrac, query::AggregateFunction::kSum, 0.06, tightness);
    RunMaxPanel(detrac, 0.02, tightness);
    RunMeanPanel(detrac, query::AggregateFunction::kCount, 0.003, tightness);
  }

  std::printf(
      "\nHeadline: Smokescreen's bound is up to %.2f%% tighter than the best\n"
      "reliable baseline (at %s).\n"
      "Paper reports up to 154.70%%; CLT is tighter but unreliable (Fig. 5).\n",
      tightness.max_ratio * 100.0, tightness.where.c_str());
  return 0;
}
