// Figure 8: the car-count distribution predicted by YOLOv4 on night-street
// video at resolutions 608x608 (the ground truth), 384x384, and 320x320.
// The 320 distribution is similar to the truth while the 384 distribution
// deviates substantially — explaining Figure 7's anomalous error spike.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/histogram.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Figure 8: predicted car-count distribution (night-street, YOLO) ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kNightStreet, "yolov4");
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;

  stats::IntHistogram h608, h384, h320;
  for (int64_t i = 0; i < wl.dataset->num_frames(); ++i) {
    auto c608 = wl.source->RawCount(i, 608);
    auto c384 = wl.source->RawCount(i, 384);
    auto c320 = wl.source->RawCount(i, 320);
    c608.status().CheckOk();
    c384.status().CheckOk();
    c320.status().CheckOk();
    h608.Add(*c608);
    h384.Add(*c384);
    h320.Add(*c320);
  }

  int64_t max_count = std::max({h608.max_key(), h384.max_key(), h320.max_key()});
  util::TablePrinter table({"cars_in_frame", "frames@608 (truth)", "frames@384", "frames@320"});
  for (int64_t k = 0; k <= max_count; ++k) {
    table.AddRow({std::to_string(k), std::to_string(h608.CountFor(k)),
                  std::to_string(h384.CountFor(k)), std::to_string(h320.CountFor(k))});
  }
  table.Print(std::cout);

  double tv_384 = h608.TotalVariationDistance(h384);
  double tv_320 = h608.TotalVariationDistance(h320);
  std::printf(
      "\nTotal-variation distance from the 608 (truth) distribution:\n"
      "  384x384: %.4f\n  320x320: %.4f\n",
      tv_384, tv_320);
  std::printf(
      "\nPaper-shape check: the 320 distribution stays close to the truth\n"
      "while 384 deviates substantially (TV %.2fx larger) — the network's\n"
      "large prediction error at 384 causes Figure 7's spike.\n",
      tv_320 > 0 ? tv_384 / tv_320 : 0.0);
  return tv_384 > tv_320 ? 0 : 1;
}
