// Ablation: profiles are model-dependent.
//
// §2.2 establishes that tradeoff curves depend on the query and the video;
// since the model is part of the query (the UDF), the curve also depends on
// WHICH detector runs it. This harness sweeps the resolution knob on
// UA-DETRAC with three car detectors — the paper's two (YOLOv4, Mask R-CNN
// analogues) plus the SSD-class edge model — and shows three very different
// curves, i.e. a profile generated for one model must not be reused for
// another.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "detect/models.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Ablation: the tradeoff curve depends on the model ===\n\n");

  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;

  struct ModelCase {
    const char* name;
    std::unique_ptr<detect::Detector> model;
  };
  std::vector<ModelCase> models;
  models.push_back({"SimYoloV4", detect::MakeSimYoloV4()});
  models.push_back({"SimMaskRcnn", detect::MakeSimMaskRcnn()});
  models.push_back({"SimSsd", detect::MakeSimSsd()});

  auto dataset = video::MakePreset(video::ScenePreset::kUaDetrac);
  dataset.status().CheckOk();

  util::TablePrinter table({"resolution", "rel_err_yolov4", "rel_err_maskrcnn", "rel_err_ssd"});
  std::vector<int> resolutions = {128, 256, 320, 448, 512};
  std::vector<std::vector<double>> errors(models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    query::FrameOutputSource source(*dataset, *models[m].model, video::ObjectClass::kCar);
    auto gt = query::ComputeGroundTruth(source, spec);
    gt.status().CheckOk();
    for (int res : resolutions) {
      int stride = models[m].model->resolution_stride();
      int aligned = std::min(res / stride * stride, models[m].model->max_resolution());
      auto degraded = query::ComputeGroundTruth(source, spec, aligned);
      degraded.status().CheckOk();
      errors[m].push_back(query::RelativeError(degraded->y_true, gt->y_true));
    }
  }
  for (size_t r = 0; r < resolutions.size(); ++r) {
    table.AddRow({std::to_string(resolutions[r]), util::FormatDouble(errors[0][r]),
                  util::FormatDouble(errors[1][r]), util::FormatDouble(errors[2][r])});
  }
  table.Print(std::cout);

  double spread = 0;
  for (size_t r = 0; r < resolutions.size(); ++r) {
    double lo = std::min({errors[0][r], errors[1][r], errors[2][r]});
    double hi = std::max({errors[0][r], errors[1][r], errors[2][r]});
    spread = std::max(spread, hi - lo);
  }
  std::printf(
      "\nMax cross-model error spread at one resolution: %.3f — a profile is\n"
      "specific to (video, query, MODEL); switching the detector requires\n"
      "re-profiling, exactly as the paper's usage model prescribes.\n",
      spread);
  return spread > 0.05 ? 0 : 1;
}
