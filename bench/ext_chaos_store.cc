// Extension: chaos test of the crash-safe output store.
//
// Sweeps a per-operation I/O fault rate (util::FaultEnv — torn writes,
// silent bit flips, failed fsyncs/renames, read faults) and drives a
// save / crash / load / repair loop against one persisted OutputStore,
// checking the two durability invariants the design promises:
//
//   1. NO COMMITTED-DATA LOSS: once a Save has succeeded, the file read
//      through a clean env always strict-loads, bit-identical to the saved
//      store — a faulty later save can never damage the committed bytes.
//   2. NO SILENT CORRUPTION: a salvage load through the faulty env either
//      fails with a Status or yields columns whose every frame/count is
//      bit-identical to the reference — an unverified count is never served.
//
// A separate bit-rot phase corrupts counts bytes at rest and runs the
// Scrub -> RepairStore healing loop: the repaired file must scrub clean and
// warm-start to outputs bit-identical to the original computation.
//
// Results are appended to BENCH_chaos.json (or --out FILE).
//
//   usage: ext_chaos_store [--frames N] [--rounds R] [--out FILE]

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_common.h"
#include "query/output_store.h"
#include "stats/rng.h"
#include "util/env.h"
#include "util/string_util.h"

using namespace smokescreen;

namespace {

using ColumnKey = std::tuple<int, int, int64_t>;  // (resolution, cls, contrast_q)
using ColumnMap = std::map<ColumnKey, const query::OutputColumnRecord*>;

ColumnMap IndexColumns(const query::OutputStore& store) {
  ColumnMap map;
  for (const query::OutputColumnRecord& c : store.columns()) {
    map[{c.resolution, c.cls, c.contrast_q}] = &c;
  }
  return map;
}

/// Every column of `got` must exist in `want` with bit-identical payloads.
/// Returns the number of mismatching columns (silent corruption if > 0).
int64_t CountMismatches(const ColumnMap& want, const query::OutputStore& got) {
  int64_t mismatches = 0;
  for (const query::OutputColumnRecord& c : got.columns()) {
    auto it = want.find({c.resolution, c.cls, c.contrast_q});
    if (it == want.end() || c.frames != it->second->frames || c.counts != it->second->counts) {
      ++mismatches;
    }
  }
  return mismatches;
}

struct RateResult {
  double rate = 0.0;
  int64_t saves_attempted = 0;
  int64_t saves_committed = 0;
  int64_t faults_injected = 0;
  int64_t salvage_loads = 0;
  int64_t salvage_errors = 0;     // Status-returning loads (honest failures).
  int64_t columns_quarantined = 0;
  int64_t silent_corruptions = 0;     // MUST stay 0.
  int64_t committed_load_failures = 0;  // MUST stay 0.
};

}  // namespace

int main(int argc, char** argv) {
  // Exports the metrics registry at exit when --metrics-out <path> (stripped
  // here) or $SMOKESCREEN_METRICS_OUT is set.
  bench::MetricsDumpGuard metrics_guard(argc, argv);
  int64_t frames = 1200;
  int64_t rounds = 80;
  std::string out_path = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      *out = *parsed;
    };
    if (arg == "--frames") {
      next_int(&frames);
    } else if (arg == "--rounds") {
      next_int(&rounds);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: ext_chaos_store [--frames N] [--rounds R] [--out FILE]\n");
      return 2;
    }
  }

  std::printf("=== Extension: chaos test of the crash-safe output store ===\n");
  std::printf("frames=%lld, rounds per fault rate=%lld\n\n", static_cast<long long>(frames),
              static_cast<long long>(rounds));

  // Reference computation: two columns through the real model.
  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4", frames);
  {
    std::vector<int64_t> all(static_cast<size_t>(wl.dataset->num_frames()));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
    std::vector<int> scratch(all.size());
    wl.source->FillCounts(all, 320, 1.0, scratch).CheckOk();
    const size_t subset = all.size() / 4;
    wl.source->FillCounts(std::span<const int64_t>(all.data(), subset), 608, 0.9,
                          std::span<int>(scratch.data(), subset))
        .CheckOk();
  }
  const query::OutputStore reference = wl.source->ExportStore();
  const ColumnMap reference_columns = IndexColumns(reference);
  std::printf("reference store: %zu columns, %lld entries\n\n", reference.columns().size(),
              static_cast<long long>(reference.TotalEntries()));

  const std::string path = out_path + ".store.tmp-chaos";
  util::Env& posix = util::Env::Default();

  // --- Phase 1: save/crash/load sweep over per-op fault rates -------------
  const std::vector<double> rates = {0.01, 0.05, 0.10, 0.25};
  std::vector<RateResult> results;
  bool pass = true;

  for (double rate : rates) {
    posix.RemoveFile(path).CheckOk();
    auto env = util::FaultEnv::Create(
        util::FaultEnvProfile::AllFaults(rate, /*seed=*/0xC4A05 + results.size()));
    env.status().CheckOk();

    RateResult r;
    r.rate = rate;
    bool committed = false;
    for (int64_t round = 0; round < rounds; ++round) {
      // Save through the faulty env — may tear, flip, or fail to rename.
      ++r.saves_attempted;
      if (reference.Save(*env, path).ok()) {
        ++r.saves_committed;
        committed = true;
      }

      // Invariant 1: the committed file, read cleanly, is exactly the store.
      if (committed) {
        auto clean = query::OutputStore::Load(posix, path);
        if (!clean.ok() || CountMismatches(reference_columns, *clean) > 0 ||
            clean->columns().size() != reference.columns().size()) {
          ++r.committed_load_failures;
        }
      }

      // Invariant 2: a salvage through the FAULTY env (read faults corrupt
      // the returned buffer) either errors or yields only verified,
      // bit-identical columns.
      ++r.salvage_loads;
      auto salvaged = query::OutputStore::Salvage(*env, path);
      if (!salvaged.ok()) {
        ++r.salvage_errors;
      } else {
        r.columns_quarantined += static_cast<int64_t>(salvaged->report.quarantined.size());
        r.silent_corruptions += CountMismatches(reference_columns, salvaged->store);
      }
    }
    r.faults_injected = env->faults_injected();
    if (r.silent_corruptions > 0 || r.committed_load_failures > 0 || r.saves_committed == 0) {
      pass = false;
    }
    results.push_back(r);
    std::printf(
        "rate %.2f: %3lld/%3lld saves committed, %4lld faults injected, "
        "%3lld salvage errors, %3lld quarantined, silent corruption %lld, "
        "committed-data loss %lld\n",
        rate, static_cast<long long>(r.saves_committed),
        static_cast<long long>(r.saves_attempted), static_cast<long long>(r.faults_injected),
        static_cast<long long>(r.salvage_errors), static_cast<long long>(r.columns_quarantined),
        static_cast<long long>(r.silent_corruptions),
        static_cast<long long>(r.committed_load_failures));
  }

  // --- Phase 2: at-rest bit rot in the counts region, healed by repair ----
  std::printf("\nbit-rot repair cycles:\n");
  int64_t repairs = 0, entries_recomputed = 0, repair_failures = 0;
  {
    posix.RemoveFile(path).CheckOk();
    reference.Save(posix, path).CheckOk();
    // The file tail is the LAST column's counts array — rot bytes there so
    // the frame list stays verifiable and repair can recompute.
    const int64_t last_counts_bytes =
        static_cast<int64_t>(reference.columns().back().counts.size()) * 4;
    stats::Rng rng(0xB17);

    for (int cycle = 0; cycle < 10; ++cycle) {
      auto bytes = posix.ReadFileBytes(path);
      bytes.status().CheckOk();
      const size_t offset =
          bytes->size() - 1 - static_cast<size_t>(rng.NextBounded(
                                  static_cast<uint64_t>(last_counts_bytes)));
      (*bytes)[offset] ^= 0x20;
      posix.WriteFileAtomic(path, *bytes).CheckOk();

      auto scrub = query::OutputStore::Scrub(posix, path);
      scrub.status().CheckOk();
      if (scrub->clean()) {
        ++repair_failures;  // The rot must be visible to Scrub.
        continue;
      }
      query::FrameOutputSource healer(*wl.dataset, *wl.model, video::ObjectClass::kCar);
      auto repair = healer.RepairStore(posix, path);
      if (!repair.ok() || repair->columns_dropped > 0) {
        ++repair_failures;
        continue;
      }
      ++repairs;
      entries_recomputed += repair->entries_recomputed;

      auto healed = query::OutputStore::Load(posix, path);
      if (!healed.ok() || CountMismatches(reference_columns, *healed) > 0 ||
          healed->columns().size() != reference.columns().size()) {
        ++repair_failures;  // Repair must restore bit-identity.
      }
    }
  }
  if (repair_failures > 0 || repairs == 0) pass = false;
  std::printf("  %lld repairs, %lld entries recomputed bit-identically, %lld failures\n",
              static_cast<long long>(repairs), static_cast<long long>(entries_recomputed),
              static_cast<long long>(repair_failures));
  posix.RemoveFile(path).CheckOk();

  std::printf("\n%s\n", pass ? "PASS: no silent corruption, no committed-data loss"
                             : "FAIL: durability invariant violated");

  // --- JSON -----------------------------------------------------------------
  std::string json_rates;
  for (const RateResult& r : results) {
    if (!json_rates.empty()) json_rates += ",\n";
    json_rates += "    {\"rate\": " + util::FormatDouble(r.rate, 2) +
                  ", \"saves_attempted\": " + std::to_string(r.saves_attempted) +
                  ", \"saves_committed\": " + std::to_string(r.saves_committed) +
                  ", \"faults_injected\": " + std::to_string(r.faults_injected) +
                  ", \"salvage_errors\": " + std::to_string(r.salvage_errors) +
                  ", \"columns_quarantined\": " + std::to_string(r.columns_quarantined) +
                  ", \"silent_corruptions\": " + std::to_string(r.silent_corruptions) +
                  ", \"committed_load_failures\": " + std::to_string(r.committed_load_failures) +
                  "}";
  }
  std::ofstream json(out_path, std::ios::trunc);
  if (json) {
    json << "{\n  \"bench\": \"ext_chaos_store\",\n"
         << "  \"frames\": " << frames << ",\n"
         << "  \"rounds\": " << rounds << ",\n"
         << "  \"reference_entries\": " << reference.TotalEntries() << ",\n"
         << "  \"rates\": [\n"
         << json_rates << "\n  ],\n"
         << "  \"repairs\": " << repairs << ",\n"
         << "  \"entries_recomputed\": " << entries_recomputed << ",\n"
         << "  \"repair_failures\": " << repair_failures << ",\n"
         << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::printf("results written to %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}
