// Micro-benchmarks for the substrate: scene simulation, detector inference,
// prior construction, degraded-view creation and sampling. These set the
// scale for the cost model: the simulated detector runs in microseconds
// where a real network takes ~30 ms/frame, which is why §5.3.1's
// invocation-count accounting (not wall-clock) is the portable comparison.

#include <benchmark/benchmark.h>

#include "degrade/degraded_view.h"
#include "detect/class_prior_index.h"
#include "detect/models.h"
#include "stats/sampling.h"
#include "video/presets.h"

namespace {

using namespace smokescreen;

void BM_SceneSimulation(benchmark::State& state) {
  video::SceneConfig cfg = video::PresetConfig(video::ScenePreset::kUaDetrac);
  cfg.num_frames = state.range(0);
  cfg.num_sequences = 1;
  for (auto _ : state) {
    auto ds = video::SimulateScene(cfg);
    benchmark::DoNotOptimize(ds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SceneSimulation)->Arg(1000)->Arg(10000);

void BM_DetectorInference(benchmark::State& state) {
  auto ds = video::MakePresetScaled(video::ScenePreset::kUaDetrac, 2000);
  ds.status().CheckOk();
  detect::SimYoloV4 yolo;
  int64_t frame = 0;
  for (auto _ : state) {
    auto count = yolo.CountDetections(*ds, frame, static_cast<int>(state.range(0)),
                                      video::ObjectClass::kCar, 1.0);
    benchmark::DoNotOptimize(count);
    frame = (frame + 1) % ds->num_frames();
  }
}
BENCHMARK(BM_DetectorInference)->Arg(128)->Arg(608);

void BM_PriorConstruction(benchmark::State& state) {
  auto ds = video::MakePresetScaled(video::ScenePreset::kUaDetrac, state.range(0));
  ds.status().CheckOk();
  detect::SimYoloV4 yolo;
  detect::SimMtcnn mtcnn;
  for (auto _ : state) {
    auto prior = detect::ClassPriorIndex::Build(*ds, yolo, mtcnn);
    benchmark::DoNotOptimize(prior);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PriorConstruction)->Arg(1000);

void BM_DegradedViewCreation(benchmark::State& state) {
  auto ds = video::MakePresetScaled(video::ScenePreset::kUaDetrac, 5000);
  ds.status().CheckOk();
  detect::SimYoloV4 yolo;
  detect::SimMtcnn mtcnn;
  auto prior = detect::ClassPriorIndex::Build(*ds, yolo, mtcnn);
  prior.status().CheckOk();
  degrade::InterventionSet iv;
  iv.sample_fraction = 0.1;
  iv.resolution = 320;
  iv.restricted.Add(video::ObjectClass::kPerson);
  stats::Rng rng(1);
  for (auto _ : state) {
    auto view = degrade::DegradedView::Create(*ds, *prior, iv, 608, rng);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_DegradedViewCreation);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  stats::Rng rng(2);
  for (auto _ : state) {
    auto sample = stats::SampleWithoutReplacement(1000000, state.range(0), rng);
    benchmark::DoNotOptimize(sample);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
