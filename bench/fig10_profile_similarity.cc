// Figure 10: profile similarity between similar videos (§5.3.2).
//
// Video A (MVI_40771-like, 1720 frames) is the sensitive original; video B
// (MVI_40775-like, 975 frames) is the same camera at a different time. The
// target profile is computed on A with a 500-frame correction set. It is
// compared against:
//   * A's profile when at most 50 randomly sampled frames are accessible
//     (a high degradation requirement) — substantially different;
//   * B's profile with 500 accessible frames — close to the target.
// Left sweep: sample size (resolution fixed 608, sizes <= 100 as in the
// paper). Right sweep: resolution (sample size fixed 500).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr double kDelta = 0.05;
constexpr int kTrials = 20;

// Average corrected error bound on `wl` for a degraded query at
// `sample_size` frames and `resolution`, repaired with a correction set of
// size `correction_size`.
double ProfileValue(bench::Workload& wl, int64_t sample_size, int resolution,
                    int64_t correction_size, stats::Rng& rng) {
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  correction_size = std::min(correction_size, wl.dataset->num_frames());
  sample_size = std::min(sample_size, wl.dataset->num_frames());

  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto correction = core::BuildCorrectionSet(*wl.source, spec, correction_size, kDelta, rng);
    correction.status().CheckOk();
    degrade::InterventionSet iv;
    iv.sample_fraction =
        static_cast<double>(sample_size) / static_cast<double>(wl.dataset->num_frames());
    iv.resolution = resolution;
    auto est = core::ResultErrorEst(*wl.source, *wl.prior, spec, iv, kDelta, rng);
    est.status().CheckOk();
    bool non_random = resolution != wl.model->max_resolution();
    double bound = est->estimate.err_b;
    auto repaired = core::RepairErrorBound(spec, *est, *correction);
    repaired.status().CheckOk();
    bound = non_random ? *repaired : std::min(bound, *repaired);
    total += std::min(bound, 10.0);
  }
  return total / kTrials;
}

}  // namespace

int main() {
  std::printf("=== Figure 10: profile similarity between similar videos ===\n\n");
  bench::Workload a = bench::MakeWorkload(video::ScenePreset::kMvi40771, "yolov4");
  bench::Workload b = bench::MakeWorkload(video::ScenePreset::kMvi40775, "yolov4");
  std::printf("video A: %lld frames (target: 500-frame correction set)\n",
              static_cast<long long>(a.dataset->num_frames()));
  std::printf("video B: %lld frames (similar video, 500-frame correction set)\n\n",
              static_cast<long long>(b.dataset->num_frames()));

  stats::Rng rng(1010);

  // Left: sample-size sweep at resolution 608.
  std::printf("left: reduced frame sampling (resolution 608)\n");
  util::TablePrinter left({"sample_size", "diff_A_limited50", "diff_B_500frames"});
  double max_b_diff_left = 0;
  for (int64_t size : {10, 20, 30, 40, 50, 60, 80, 100}) {
    double target = ProfileValue(a, size, 608, 500, rng);
    double a_limited = ProfileValue(a, std::min<int64_t>(size, 50), 608, 50, rng);
    double b_transfer = ProfileValue(b, size, 608, 500, rng);
    double diff_limited = std::abs(a_limited - target);
    double diff_b = std::abs(b_transfer - target);
    max_b_diff_left = std::max(max_b_diff_left, diff_b);
    left.AddRow({std::to_string(size), util::FormatDouble(diff_limited),
                 util::FormatDouble(diff_b)});
  }
  left.Print(std::cout);

  // Right: resolution sweep at sample size 500.
  std::printf("\nright: reduced resolution (sample size 500)\n");
  util::TablePrinter right({"resolution", "diff_A_limited50", "diff_B_500frames"});
  double max_b_diff_right = 0;
  for (int res : {128, 224, 320, 416, 512, 608}) {
    double target = ProfileValue(a, 500, res, 500, rng);
    double a_limited = ProfileValue(a, 50, res, 50, rng);
    double b_transfer = ProfileValue(b, 500, res, 500, rng);
    double diff_limited = std::abs(a_limited - target);
    double diff_b = std::abs(b_transfer - target);
    max_b_diff_right = std::max(max_b_diff_right, diff_b);
    right.AddRow({std::to_string(res), util::FormatDouble(diff_limited),
                  util::FormatDouble(diff_b)});
  }
  right.Print(std::cout);

  std::printf(
      "\nPaper-shape check: the 50-frame-limited profile of A differs\n"
      "substantially from the target, while the similar video B's profile\n"
      "stays close (max diff %.2f%% on sampling sweep, %.2f%% on resolution\n"
      "sweep; paper: within 5%% on resolution).\n",
      max_b_diff_left * 100.0, max_b_diff_right * 100.0);
  return 0;
}
