// Shared workload setup for the experiment harnesses: builds the paper's
// §5.1 workloads (dataset preset + detection model + restricted-class prior
// + output source) and provides the per-trial sampling/estimation loops the
// figures are averaged over.

#ifndef SMOKESCREEN_BENCH_BENCH_COMMON_H_
#define SMOKESCREEN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator_api.h"
#include "core/repair.h"
#include "detect/class_prior_index.h"
#include "detect/models.h"
#include "detect/registry.h"
#include "engine/runtime.h"
#include "query/executor.h"
#include "query/output_source.h"
#include "stats/rng.h"
#include "util/metrics.h"
#include "video/presets.h"

namespace smokescreen {
namespace bench {

/// The process-wide engine runtime every bench workload is wired through.
/// Default options: process-default Env/registry, hardware-width executor.
inline engine::Runtime& BenchRuntime() {
  static std::unique_ptr<engine::Runtime> runtime = [] {
    auto created = engine::Runtime::Create({});
    created.status().CheckOk();
    return std::move(created).ValueOrDie();
  }();
  return *runtime;
}

/// A fully materialized workload: video + model + prior + output cache. The
/// engine handle owns the pieces; the raw pointers keep the historical bench
/// spelling (`*wl.dataset`, `wl.source->...`) working unchanged.
struct Workload {
  std::string label;
  engine::WorkloadHandle handle;
  const video::VideoDataset* dataset = nullptr;
  const detect::Detector* model = nullptr;
  const detect::ClassPriorIndex* prior = nullptr;
  query::FrameOutputSource* source = nullptr;
};

/// Builds a workload through the bench runtime. `detector_name` is "yolov4"
/// or "maskrcnn"; the prior is always computed with YOLO (person) + MTCNN
/// (face), as in the paper. `frames` == 0 uses the preset's full length.
/// Workloads are ISOLATED (never the runtime's shared instance): every call
/// returns a cold output cache, preserving each bench's cold-start timing.
inline Workload MakeWorkload(video::ScenePreset preset, const std::string& detector_name,
                             int64_t frames = 0) {
  engine::WorkloadDesc desc;
  desc.preset = preset;
  desc.frames = frames;
  desc.detector_name = detector_name;
  auto handle = BenchRuntime().CreateIsolatedWorkload(desc);
  handle.status().CheckOk();

  Workload wl;
  wl.handle = *handle;
  wl.dataset = &wl.handle->dataset();
  wl.model = &wl.handle->detector();
  wl.prior = &wl.handle->prior();
  wl.source = &wl.handle->source();
  wl.label = wl.handle->label();
  return wl;
}

/// Realized error of an estimate against ground truth, using the metric the
/// paper assigns to the aggregate (relative for the mean family,
/// rank-relative for MAX/MIN).
inline double RealizedError(const query::QuerySpec& spec, const query::GroundTruth& gt,
                            double y_approx) {
  if (query::UsesRelativeErrorMetric(spec.aggregate)) {
    return query::RelativeError(y_approx, gt.y_true);
  }
  auto err = query::RankRelativeError(gt.outputs, y_approx, gt.y_true);
  err.status().CheckOk();
  return *err;
}

/// Averages of one (true error, bounds...) experiment cell over trials.
struct TrialAverages {
  double true_error = 0.0;
  std::vector<double> bounds;  // One per estimator, caller-defined order.
  int violations = 0;          // Trials where bounds[0] < true error.
};

/// Observability decorator for the bench harnesses: construct one at the top
/// of main() and the process-wide metrics registry is exported when the
/// bench exits its scope. The export path comes from a "--metrics-out <p>"
/// pair, which the constructor STRIPS from (argc, argv) so each bench's own
/// flag parser never sees it, or from $SMOKESCREEN_METRICS_OUT when the flag
/// is absent. No path -> no export, zero overhead beyond the instruments the
/// bench already drives. A path ending in ".csv" exports the flat CSV form;
/// anything else gets the JSON snapshot (both written atomically through the
/// Env seam).
class MetricsDumpGuard {
 public:
  MetricsDumpGuard(int& argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--metrics-out") {
        path_ = argv[i + 1];
        for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
        argc -= 2;
        break;
      }
    }
    if (path_.empty()) {
      const char* env_path = std::getenv("SMOKESCREEN_METRICS_OUT");
      if (env_path != nullptr) path_ = env_path;
    }
  }

  ~MetricsDumpGuard() {
    if (path_.empty()) return;
    util::MetricsSnapshot snapshot = util::MetricsRegistry::Default().Snapshot();
    const bool csv = path_.size() >= 4 && path_.compare(path_.size() - 4, 4, ".csv") == 0;
    util::Status status = csv ? snapshot.WriteCsv(util::Env::Default(), path_)
                              : snapshot.WriteJson(util::Env::Default(), path_);
    if (status.ok()) {
      std::printf("metrics written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "metrics export to %s failed: %s\n", path_.c_str(),
                   status.ToString().c_str());
    }
  }

  MetricsDumpGuard(const MetricsDumpGuard&) = delete;
  MetricsDumpGuard& operator=(const MetricsDumpGuard&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace bench
}  // namespace smokescreen

#endif  // SMOKESCREEN_BENCH_BENCH_COMMON_H_
