// Figure 3: real degradation-accuracy tradeoff curves for the AVG query on
// the night-street and UA-DETRAC videos, using YOLOv4 to detect cars.
// X-axis: frame resolution; Y-axis: relative error of the query result
// computed on the fully resolution-degraded video versus the non-degraded
// result. Reproduces the paper's observation that the two curves differ
// substantially, i.e. tradeoff curves are video-dependent.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Figure 3: real tradeoff curves (AVG cars, SimYoloV4) ===\n\n");

  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;

  util::TablePrinter table({"resolution", "rel_err night-street", "rel_err ua-detrac"});
  bench::Workload night = bench::MakeWorkload(video::ScenePreset::kNightStreet, "yolov4");
  bench::Workload detrac = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");

  auto gt_night = query::ComputeGroundTruth(*night.source, spec);
  auto gt_detrac = query::ComputeGroundTruth(*detrac.source, spec);
  gt_night.status().CheckOk();
  gt_detrac.status().CheckOk();

  for (int res : {64, 128, 192, 256, 320, 384, 448, 512, 576, 608}) {
    auto night_out = query::ComputeGroundTruth(*night.source, spec, res);
    auto detrac_out = query::ComputeGroundTruth(*detrac.source, spec, res);
    night_out.status().CheckOk();
    detrac_out.status().CheckOk();
    table.AddRow({std::to_string(res),
                  util::FormatDouble(query::RelativeError(night_out->y_true, gt_night->y_true)),
                  util::FormatDouble(query::RelativeError(detrac_out->y_true,
                                                          gt_detrac->y_true))});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper-shape check: both curves rise as resolution falls, but with\n"
      "clearly different shapes/magnitudes (and the night-street curve is\n"
      "non-monotone near 384px) -> tradeoff curves are video-dependent.\n");
  return 0;
}
