// Figure 7: applying YOLOv4 to compute the average number of cars in
// night-street video, sweeping the frame resolution. The relative error is
// abnormally large at 384x384 — LARGER than at the lower resolution 320x320
// — because the network's prediction distribution collapses there (Figure 8
// shows the distributions). The profile exposes this counter-intuitive trap
// so administrators do not pick 384 believing higher resolution == better.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/sampling.h"
#include "core/repair.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Figure 7: YOLOv4 resolution anomaly on night-street (AVG) ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kNightStreet, "yolov4");
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();

  stats::Rng rng(77);
  int64_t corr_size = stats::FractionToCount(wl.dataset->num_frames(), 0.06);
  auto correction = core::BuildCorrectionSet(*wl.source, spec, corr_size, 0.05, rng);
  correction.status().CheckOk();

  util::TablePrinter table({"resolution", "true_rel_err", "bound_w/_corr", "anomaly"});
  const int kTrials = 20;
  double err_320 = 0, err_384 = 0;
  for (int res : {128, 192, 256, 320, 352, 384, 416, 448, 512, 608}) {
    degrade::InterventionSet iv;
    iv.sample_fraction = 0.5;
    iv.resolution = res;
    double true_err = 0, bound = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto result = core::ResultErrorEst(*wl.source, *wl.prior, spec, iv, 0.05, rng);
      result.status().CheckOk();
      auto repaired = core::RepairErrorBound(spec, *result, *correction);
      repaired.status().CheckOk();
      true_err += query::RelativeError(result->estimate.y_approx, gt->y_true);
      bound += *repaired;
    }
    true_err /= kTrials;
    bound /= kTrials;
    if (res == 320) err_320 = true_err;
    if (res == 384) err_384 = true_err;
    table.AddRow({std::to_string(res), util::FormatDouble(true_err),
                  util::FormatDouble(bound), res == 384 ? "<== abnormal (red circle)" : ""});
  }
  table.Print(std::cout);

  std::printf(
      "\nPaper-shape check: err(384)=%.3f %s err(320)=%.3f — the higher\n"
      "resolution 384 is WORSE than 320, exactly the anomaly of Figure 7.\n"
      "The profile catches it; an administrator tuning blindly would not.\n",
      err_384, err_384 > err_320 ? ">" : "<=", err_320);
  return err_384 > err_320 ? 0 : 1;
}
