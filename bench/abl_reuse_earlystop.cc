// Ablation: the §3.3.2 profiler efficiencies.
//
//   REUSE — within each candidate group, samples for ascending fractions are
//           nested prefixes of one permutation, so low-rate outputs are
//           reused at higher rates. Ablated by estimating every candidate
//           independently (fresh sample per candidate, no shared prefix).
//   EARLY STOPPING — skip the remaining (costlier) fractions of a group once
//           the bound improves more slowly than a tolerance.
//
// Reported: model invocations (the cost that dominates profile time, §5.3.1)
// and the number of profile points produced, for all four combinations.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "core/candidate_design.h"
#include "core/profiler.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Ablation: profiler reuse + early stopping (UA-DETRAC, AVG) ===\n\n");

  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;

  core::CandidateGridOptions grid_opts;
  grid_opts.min_fraction = 0.01;
  grid_opts.max_fraction = 0.10;
  grid_opts.fraction_step = 0.01;
  grid_opts.num_resolutions = 5;
  grid_opts.include_class_combinations = false;

  util::TablePrinter table(
      {"configuration", "model_invocations", "cache_hits", "profile_points"});

  // --- Reuse ON (the Profiler's native nested-prefix strategy). ---
  for (bool early_stop : {false, true}) {
    bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
    auto grid = core::BuildCandidateGrid(*wl.model, grid_opts);
    grid.status().CheckOk();
    core::ProfilerOptions opts;
    opts.use_correction_set = false;
    opts.early_stop = early_stop;
    opts.early_stop_tolerance = 0.01;
    core::Profiler profiler(*wl.source, *wl.prior, spec, opts);
    stats::Rng rng(42);
    wl.source->ResetCounters();
    auto profile = profiler.Generate(*grid, rng);
    profile.status().CheckOk();
    table.AddRow({std::string("reuse ON,  early-stop ") + (early_stop ? "ON " : "OFF"),
                  std::to_string(wl.source->model_invocations()),
                  std::to_string(wl.source->cache_hits()),
                  std::to_string(profile->points.size())});
  }

  // --- Reuse OFF: estimate each candidate independently. ---
  for (bool early_stop : {false, true}) {
    bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
    auto grid = core::BuildCandidateGrid(*wl.model, grid_opts);
    grid.status().CheckOk();
    stats::Rng rng(42);
    wl.source->ResetCounters();
    int64_t points = 0;
    // Walk candidates in the profiler's order (grouped, ascending fraction)
    // so early stopping is comparable.
    double prev_err = 1e18;
    int prev_resolution = -1;
    for (const degrade::InterventionSet& iv : *grid) {
      if (iv.resolution != prev_resolution) {
        prev_err = 1e18;  // New group.
        prev_resolution = iv.resolution;
      } else if (early_stop && prev_err < 1e17) {
        // Group already stopped? prev_err is set to sentinel below.
      }
      if (prev_err < 0) continue;  // Group stopped.
      auto result = core::ResultErrorEst(*wl.source, *wl.prior, spec, iv, 0.05, rng);
      result.status().CheckOk();
      ++points;
      if (early_stop && prev_err < 1e17 && prev_err - result->estimate.err_b < 0.01) {
        prev_err = -1;  // Stop this group.
      } else {
        prev_err = result->estimate.err_b;
      }
    }
    table.AddRow({std::string("reuse OFF, early-stop ") + (early_stop ? "ON " : "OFF"),
                  std::to_string(wl.source->model_invocations()),
                  std::to_string(wl.source->cache_hits()), std::to_string(points)});
  }

  table.Print(std::cout);
  std::printf(
      "\nReuse removes the per-fraction resampling cost (invocations drop to\n"
      "the largest fraction per group); early stopping prunes the flat tail\n"
      "of each group. Together they are the \"modest overhead\" of §3.3.2.\n");
  return 0;
}
