// Figure 6: error bounds with and without the correction set, versus the
// true error, under each kind of destructive intervention, for AVG and MAX
// on both datasets.
//
//   row 1 — reduced frame sampling (random):       bounds valid either way;
//           the correction set helps when it carries more information than
//           the tiny degraded sample.
//   row 2 — reduced frame resolution (non-random, f fixed at 0.5): the
//           UNCORRECTED bound can fall below the true error ("WRONG" -> the
//           paper's red circles); the corrected bound never does.
//   row 3 — image removal (non-random, f = 0.5 night / 0.1 UA-DETRAC): same
//           failure and repair.
//
// Correction-set sizes follow §5.2.2: night-street 6% (AVG) / 2% (MAX);
// UA-DETRAC 4% (AVG) / 2% (MAX).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr int kTrials = 30;
constexpr double kDelta = 0.05;

struct Cell {
  double true_err = 0;
  double bound_without = 0;
  double bound_with = 0;
  bool without_wrong = false;  // Averaged uncorrected bound below true error.
};

Cell RunCell(bench::Workload& wl, const query::QuerySpec& spec,
             const degrade::InterventionSet& iv, const core::CorrectionSet& correction,
             const query::GroundTruth& gt, stats::Rng& rng) {
  Cell cell;
  for (int t = 0; t < kTrials; ++t) {
    auto result = core::ResultErrorEst(*wl.source, *wl.prior, spec, iv, kDelta, rng);
    result.status().CheckOk();
    auto repaired = core::RepairErrorBound(spec, *result, correction);
    repaired.status().CheckOk();
    cell.true_err += bench::RealizedError(spec, gt, result->estimate.y_approx);
    cell.bound_without += result->estimate.err_b;
    cell.bound_with += std::min(*repaired, 10.0);
  }
  cell.true_err /= kTrials;
  cell.bound_without /= kTrials;
  cell.bound_with /= kTrials;
  cell.without_wrong = cell.bound_without < cell.true_err;
  return cell;
}

void AddRow(util::TablePrinter& table, const std::string& knob, const Cell& cell) {
  table.AddRow({knob, util::FormatDouble(cell.true_err),
                util::FormatDouble(cell.bound_without) + (cell.without_wrong ? " (WRONG)" : ""),
                util::FormatDouble(cell.bound_with)});
}

void RunPanel(bench::Workload& wl, query::AggregateFunction aggregate,
              double correction_fraction, double row3_fraction) {
  query::QuerySpec spec;
  spec.aggregate = aggregate;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();

  stats::Rng rng(stats::HashCombine({static_cast<uint64_t>(aggregate),
                                     wl.dataset->dataset_id()}));
  int64_t corr_size = stats::FractionToCount(wl.dataset->num_frames(), correction_fraction);
  auto correction = core::BuildCorrectionSet(*wl.source, spec, corr_size, kDelta, rng);
  correction.status().CheckOk();

  std::printf("\n-- %s  %s  (correction set %.0f%% = %lld frames; %d trials/cell) --\n",
              wl.label.c_str(), query::AggregateFunctionName(aggregate),
              correction_fraction * 100.0, static_cast<long long>(corr_size), kTrials);

  // Row 1: random intervention sweep.
  {
    util::TablePrinter table({"fraction", "true_err", "bound_w/o_corr", "bound_w/_corr"});
    for (double f : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
      degrade::InterventionSet iv;
      iv.sample_fraction = f;
      AddRow(table, util::FormatDouble(f, 3), RunCell(wl, spec, iv, *correction, *gt, rng));
    }
    std::printf("row 1: reduced frame sampling (random)\n");
    table.Print(std::cout);
  }

  // Row 2: resolution sweep at f = 0.5.
  {
    util::TablePrinter table({"resolution", "true_err", "bound_w/o_corr", "bound_w/_corr"});
    int stride = wl.model->resolution_stride();
    for (int res : {128, 192, 256, 320, 448, wl.model->max_resolution()}) {
      int rounded = res / stride * stride;
      if (rounded < stride) continue;
      degrade::InterventionSet iv;
      iv.sample_fraction = 0.5;
      iv.resolution = rounded;
      AddRow(table, std::to_string(rounded), RunCell(wl, spec, iv, *correction, *gt, rng));
    }
    std::printf("row 2: reduced frame resolution (non-random, f=0.5)\n");
    table.Print(std::cout);
  }

  // Row 3: restricted-class sweep.
  {
    util::TablePrinter table({"restricted", "true_err", "bound_w/o_corr", "bound_w/_corr"});
    for (const video::ClassSet& classes :
         {video::ClassSet::None(), video::ClassSet({video::ObjectClass::kFace}),
          video::ClassSet({video::ObjectClass::kPerson}),
          video::ClassSet({video::ObjectClass::kPerson, video::ObjectClass::kFace})}) {
      degrade::InterventionSet iv;
      iv.sample_fraction = row3_fraction;
      iv.restricted = classes;
      AddRow(table, classes.ToString(), RunCell(wl, spec, iv, *correction, *gt, rng));
    }
    std::printf("row 3: image removal (non-random, f=%.1f)\n", row3_fraction);
    table.Print(std::cout);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 6: correction-set repair under every intervention ===\n");
  {
    bench::Workload night = bench::MakeWorkload(video::ScenePreset::kNightStreet, "maskrcnn");
    RunPanel(night, query::AggregateFunction::kAvg, 0.06, 0.5);
    RunPanel(night, query::AggregateFunction::kMax, 0.02, 0.5);
  }
  {
    // UA-DETRAC's person-removal leaves < 50% of frames, so the paper drops
    // the row-3 fraction to 0.1 there.
    bench::Workload detrac = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
    RunPanel(detrac, query::AggregateFunction::kAvg, 0.04, 0.1);
    RunPanel(detrac, query::AggregateFunction::kMax, 0.02, 0.1);
  }
  std::printf(
      "\nPaper-shape check: rows 2-3 show uncorrected bounds marked WRONG\n"
      "(below the true error) at low resolutions / person-removal, while the\n"
      "corrected bound is always above the true error; row 1 shows the\n"
      "correction set also helping pure random sampling at tiny fractions.\n");
  return 0;
}
