// Extension: the VAR aggregate (paper §7 names VAR as future work).
//
// VAR(X) = E[X^2] - E[X]^2 is estimated from two simultaneous
// Hoeffding–Serfling intervals combined by interval arithmetic. The bound is
// range-based on X^2, so it is conservative on raw counts and informative on
// bounded outputs; both regimes are reported:
//   panel 1 — variance of the binary congestion indicator (frame has >= 8
//             cars), i.e. the uncertainty of the COUNT predicate;
//   panel 2 — variance of raw car counts (conservative; documents where the
//             extension's bound is loose).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "core/var_estimator.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr int kTrials = 100;

void RunPanel(bench::Workload& wl, const query::QuerySpec& spec, const char* label) {
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();
  std::printf("\n-- %s (true variance %.4f; %d trials) --\n", label, gt->y_true, kTrials);

  core::SmokescreenVarianceEstimator est;
  const int64_t population = wl.dataset->num_frames();
  stats::Rng rng(0x7A6);
  util::TablePrinter table({"fraction", "true_err", "var_bound", "informative_pct"});
  for (double f : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    int64_t n = stats::FractionToCount(population, f);
    double true_err = 0, bound = 0;
    int informative = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto idx = stats::SampleWithoutReplacement(population, n, rng);
      idx.status().CheckOk();
      std::vector<double> sample;
      for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);
      auto result = est.EstimateVariance(sample, population, 0.05);
      result.status().CheckOk();
      true_err += bench::RealizedError(spec, *gt, result->y_approx);
      bound += result->err_b;
      if (result->err_b < 1.0) ++informative;
    }
    table.AddRow({util::FormatDouble(f, 2), util::FormatDouble(true_err / kTrials),
                  util::FormatDouble(bound / kTrials),
                  util::FormatPercent(static_cast<double>(informative) / kTrials)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::printf("=== Extension: VAR aggregate (UA-DETRAC) ===\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");

  query::QuerySpec indicator;
  indicator.aggregate = query::AggregateFunction::kVar;
  // Reuse COUNT's transform by hand: variance over the raw counts is panel 2;
  // for the indicator panel we want VAR over 0/1 outputs, which the spec's
  // TransformOutput only applies for COUNT. Emulate with a COUNT-thresholded
  // spec whose aggregate is VAR by thresholding in a wrapper spec.
  // (VAR consumes the identity transform, so panel 1 uses a COUNT spec's
  // outputs via a custom ground truth below.)

  // Panel 1: variance of the congestion indicator.
  {
    // Build indicator outputs through a COUNT spec, then feed them to the
    // estimator directly.
    query::QuerySpec count_spec;
    count_spec.aggregate = query::AggregateFunction::kCount;
    count_spec.count_threshold = 8;
    auto outputs = wl.source->AllOutputs(count_spec, wl.model->max_resolution());
    outputs.status().CheckOk();
    auto var_true = query::ComputeAggregate(query::AggregateFunction::kVar, *outputs, 0);
    var_true.status().CheckOk();
    std::printf("\n-- VAR of congestion indicator (>=8 cars), true %.4f --\n", *var_true);

    core::SmokescreenVarianceEstimator est;
    stats::Rng rng(0x7A7);
    util::TablePrinter table({"fraction", "true_err", "var_bound", "informative_pct"});
    const int64_t population = wl.dataset->num_frames();
    for (double f : {0.05, 0.1, 0.2, 0.4, 0.8}) {
      int64_t n = stats::FractionToCount(population, f);
      double true_err = 0, bound = 0;
      int informative = 0;
      for (int t = 0; t < kTrials; ++t) {
        auto idx = stats::SampleWithoutReplacement(population, n, rng);
        idx.status().CheckOk();
        std::vector<double> sample;
        for (int64_t i : *idx) sample.push_back((*outputs)[static_cast<size_t>(i)]);
        auto result = est.EstimateVariance(sample, population, 0.05);
        result.status().CheckOk();
        true_err += std::abs(result->y_approx - *var_true) / *var_true;
        bound += result->err_b;
        if (result->err_b < 1.0) ++informative;
      }
      table.AddRow({util::FormatDouble(f, 2), util::FormatDouble(true_err / kTrials),
                    util::FormatDouble(bound / kTrials),
                    util::FormatPercent(static_cast<double>(informative) / kTrials)});
    }
    table.Print(std::cout);
  }

  // Panel 2: variance of raw car counts (documents the conservative regime).
  query::QuerySpec raw;
  raw.aggregate = query::AggregateFunction::kVar;
  RunPanel(wl, raw, "VAR of raw car counts");

  std::printf(
      "\nThe VAR bound is valid everywhere; it is informative on bounded\n"
      "indicator outputs and conservative on raw counts (range^2 scaling) —\n"
      "tightening it is genuine future work, as the paper anticipated.\n");
  return 0;
}
