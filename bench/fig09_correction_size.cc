// Figure 9: corrected error-bound estimation as a function of the
// correction-set fraction, for two representative intervention sets on
// UA-DETRAC, with AVG and MAX. The §3.3.1 elbow heuristic's chosen fraction
// is marked; the curves flatten past it, confirming that the size can be
// picked from the correction set's own bound without checking every
// intervention combination.
//
// Intervention sets (randomly selected in the paper):
//   set 1: sample fraction 0.1,  resolution 256, restricted "person"
//   set 2: sample fraction 0.05, resolution 320, restricted "face"

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

namespace {

constexpr double kDelta = 0.05;

degrade::InterventionSet Set1() {
  degrade::InterventionSet iv;
  iv.sample_fraction = 0.1;
  iv.resolution = 256;
  iv.restricted.Add(video::ObjectClass::kPerson);
  return iv;
}

degrade::InterventionSet Set2() {
  degrade::InterventionSet iv;
  iv.sample_fraction = 0.05;
  iv.resolution = 320;
  iv.restricted.Add(video::ObjectClass::kFace);
  return iv;
}

void RunPanel(bench::Workload& wl, query::AggregateFunction aggregate) {
  query::QuerySpec spec;
  spec.aggregate = aggregate;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();

  stats::Rng rng(stats::HashCombine({0xF16, static_cast<uint64_t>(aggregate)}));

  // The elbow heuristic's choice (computed from the correction set alone).
  auto sizing = core::DetermineCorrectionSetSize(*wl.source, spec, kDelta, rng, 0.2);
  sizing.status().CheckOk();

  // Degraded estimates for the two intervention sets (fixed across the
  // correction-set sweep).
  auto est1 = core::ResultErrorEst(*wl.source, *wl.prior, spec, Set1(), kDelta, rng);
  auto est2 = core::ResultErrorEst(*wl.source, *wl.prior, spec, Set2(), kDelta, rng);
  est1.status().CheckOk();
  est2.status().CheckOk();
  double true1 = bench::RealizedError(spec, *gt, est1->estimate.y_approx);
  double true2 = bench::RealizedError(spec, *gt, est2->estimate.y_approx);

  std::printf("\n-- %s %s: corrected bound vs correction-set fraction --\n", wl.label.c_str(),
              query::AggregateFunctionName(aggregate));
  std::printf("   true errors: set1 %.4f, set2 %.4f; heuristic chose %.2f%%\n", true1, true2,
              sizing->chosen_fraction * 100.0);

  // Grow the correction set along one permutation (nested prefixes), as the
  // sizing heuristic does, so the sweep is a single coherent curve.
  auto permutation = stats::SampleWithoutReplacement(wl.dataset->num_frames(),
                                                     wl.dataset->num_frames(), rng);
  permutation.status().CheckOk();

  util::TablePrinter table({"corr_fraction", "bound_set1", "bound_set2", "marker"});
  for (int pct = 1; pct <= 15; ++pct) {
    double fraction = pct / 100.0;
    int64_t m = stats::FractionToCount(wl.dataset->num_frames(), fraction);
    std::vector<int64_t> prefix(permutation->begin(), permutation->begin() + m);
    auto correction = core::BuildCorrectionSetFromFrames(*wl.source, spec, prefix, kDelta);
    correction.status().CheckOk();
    auto b1 = core::RepairErrorBound(spec, *est1, *correction);
    auto b2 = core::RepairErrorBound(spec, *est2, *correction);
    b1.status().CheckOk();
    b2.status().CheckOk();
    bool chosen = std::abs(fraction - sizing->chosen_fraction) < 0.005;
    table.AddRow({util::FormatDouble(fraction, 2), util::FormatDouble(*b1),
                  util::FormatDouble(*b2), chosen ? "<== heuristic stops here" : ""});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::printf("=== Figure 9: error bound vs correction-set size (UA-DETRAC) ===\n");
  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
  RunPanel(wl, query::AggregateFunction::kAvg);
  RunPanel(wl, query::AggregateFunction::kMax);
  std::printf(
      "\nPaper-shape check: both intervention sets' curves drop steeply at\n"
      "small fractions and flatten by the heuristic's marker — one size fits\n"
      "every intervention combination.\n");
  return 0;
}
