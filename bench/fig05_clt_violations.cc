// Figure 5: the percentage of trials (out of 100) in which the CLT-based
// error bound is SMALLER than the true error, on UA-DETRAC video with the
// AVG query. The CLT bound looks attractively tight (Figure 4) but fails to
// deliver its nominal 95% confidence at small sample fractions — it would
// mislead administrators into over-degrading.

#include <cstdio>
#include <iostream>

#include "baselines/mean_baselines.h"
#include "bench/bench_common.h"
#include "core/avg_estimator.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Figure 5: CLT bound violations on UA-DETRAC (AVG, 100 trials) ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();

  baselines::CltEstimator clt;
  core::SmokescreenMeanEstimator ours;
  const int64_t population = wl.dataset->num_frames();
  const int kTrials = 100;

  baselines::CltTEstimator clt_t;
  util::TablePrinter table(
      {"fraction", "n", "clt_viol_pct", "clt_t_viol_pct", "smk_viol_pct", "nominal_allowed"});
  stats::Rng rng(515151);
  for (double fraction : {0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032}) {
    int64_t n = std::max<int64_t>(3, stats::FractionToCount(population, fraction));
    int clt_violations = 0;
    int clt_t_violations = 0;
    int smk_violations = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto idx = stats::SampleWithoutReplacement(population, n, rng);
      idx.status().CheckOk();
      std::vector<double> sample;
      for (int64_t i : *idx) sample.push_back(gt->outputs[static_cast<size_t>(i)]);

      auto r_clt = clt.EstimateMean(sample, population, 0.05);
      r_clt.status().CheckOk();
      if (query::RelativeError(r_clt->y_approx, gt->y_true) > r_clt->err_b) ++clt_violations;

      auto r_clt_t = clt_t.EstimateMean(sample, population, 0.05);
      r_clt_t.status().CheckOk();
      if (query::RelativeError(r_clt_t->y_approx, gt->y_true) > r_clt_t->err_b) {
        ++clt_t_violations;
      }

      auto r_smk = ours.EstimateMean(sample, population, 0.05);
      r_smk.status().CheckOk();
      if (query::RelativeError(r_smk->y_approx, gt->y_true) > r_smk->err_b) ++smk_violations;
    }
    table.AddRow({util::FormatDouble(fraction, 4), std::to_string(n),
                  util::FormatPercent(static_cast<double>(clt_violations) / kTrials),
                  util::FormatPercent(static_cast<double>(clt_t_violations) / kTrials),
                  util::FormatPercent(static_cast<double>(smk_violations) / kTrials), "5.00%"});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper-shape check: CLT exceeds its 5%% allowance at small fractions\n"
      "(it under-covers exactly where degradation decisions matter), while\n"
      "Smokescreen stays within its nominal failure rate everywhere.\n");
  return 0;
}
