// Extension: fault tolerance of the deployment pipeline.
//
// Sweeps channel loss rate x retry budget for one camera under the
// fault-injection layer (camera/fault_injector.h) and reports, per cell,
//   * the delivered-sample fraction (survivors of loss + retries),
//   * the certified bound's inflation versus the clean channel (loss shrinks
//     n, so the honest bound widens — the price of staying valid), and
//   * the retransmission overhead on the NetworkLink (extra radio energy a
//     retry policy spends to buy its delivered fraction back).
// Every estimate is also checked against the feed's ground truth: coverage
// must not degrade — losing frames makes the bound wider, never wrong.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "camera/camera.h"
#include "camera/central_system.h"
#include "camera/fault_injector.h"
#include "core/avg_estimator.h"
#include "core/estimate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Extension: fault tolerance (loss rate x retry budget) ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4", 4000);
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();
  std::printf("workload %s, truth AVG=%.3f\n\n", wl.label.c_str(), gt->y_true);

  camera::CameraConfig config;
  config.camera_id = 1;
  config.interventions.sample_fraction = 0.2;
  camera::Camera cam(config, *wl.dataset, *wl.prior, 608);

  camera::NetworkLinkConfig link_config;
  link_config.energy_joules_per_byte = 1.0e-7;
  link_config.energy_joules_per_frame = 1.0e-3;

  const int kTrials = 40;
  const double kDelta = 0.05;
  core::SmokescreenMeanEstimator estimator;

  // Clean-channel reference bound (averaged over trials).
  double clean_bound = 0.0;
  {
    stats::Rng rng(0xFA01);
    auto link = camera::NetworkLink::Create(link_config);
    link.status().CheckOk();
    for (int t = 0; t < kTrials; ++t) {
      auto batch = cam.CaptureAndTransmit(*link, rng);
      batch.status().CheckOk();
      auto outputs = wl.source->Outputs(spec, batch->frame_indices, batch->resolution);
      outputs.status().CheckOk();
      auto est = estimator.EstimateMean(*outputs, batch->eligible_population, kDelta);
      est.status().CheckOk();
      clean_bound += est->err_b;
    }
    clean_bound /= kTrials;
  }
  std::printf("clean-channel bound (reference): %.4f\n\n", clean_bound);

  util::TablePrinter table({"loss_rate", "max_attempts", "delivered_frac", "avg_bound",
                            "bound_inflation", "retx_energy_pct", "coverage_pct"});
  for (double loss : {0.1, 0.2, 0.4}) {
    for (int attempts : {1, 2, 4}) {
      stats::Rng rng(0xFA01);  // Same sampling stream as the reference.
      auto link = camera::NetworkLink::Create(link_config);
      link.status().CheckOk();
      camera::TransmitPolicy policy;
      policy.max_attempts = attempts;
      policy.backoff_base_sec = 0.0;

      double delivered = 0.0, bound = 0.0;
      int covered = 0;
      for (int t = 0; t < kTrials; ++t) {
        camera::FaultProfile profile;
        profile.loss_prob = loss;
        profile.seed = 0xBEEF00 + static_cast<uint64_t>(t);
        auto injector = camera::FaultInjector::Create(profile);
        injector.status().CheckOk();
        auto batch = cam.CaptureAndTransmit(*injector, *link, rng, policy);
        batch.status().CheckOk();
        delivered += batch->DeliveryFraction();
        if (batch->frame_indices.empty()) continue;  // Nothing survived.
        auto outputs = wl.source->Outputs(spec, batch->frame_indices, batch->resolution);
        outputs.status().CheckOk();
        auto est = estimator.EstimateMean(*outputs, batch->eligible_population, kDelta);
        est.status().CheckOk();
        bound += est->err_b;
        if (core::CoversTruth(*est, gt->y_true)) ++covered;
      }
      delivered /= kTrials;
      bound /= kTrials;
      double retx_energy_share = link->EnergyJoules() > 0.0
                                     ? link->RetransmitEnergyJoules() / link->EnergyJoules()
                                     : 0.0;
      table.AddRow({util::FormatPercent(loss), std::to_string(attempts),
                    util::FormatPercent(delivered), util::FormatDouble(bound, 4),
                    util::FormatDouble(bound / clean_bound, 2) + "x",
                    util::FormatPercent(retx_energy_share),
                    util::FormatPercent(static_cast<double>(covered) / kTrials)});
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nMore retries buy delivered-sample fraction (and thus a tighter\n"
      "bound) at the cost of retransmission energy; with no retries the\n"
      "bound inflates as loss grows, but coverage holds — survivors of a\n"
      "content-independent channel are still a uniform sample, so the\n"
      "estimate degrades by widening, never by lying.\n");
  return 0;
}
