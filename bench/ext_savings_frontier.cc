// Extension: the quantified degradation/accuracy frontier (Figure 1, made
// measurable).
//
// The paper's Figure 1 sketches the administrator's tradeoff qualitatively.
// With the cost model this harness prints it end to end: for every profile
// point of an AVG query on UA-DETRAC, the certified error bound next to what
// the degradation buys (bytes, energy, recognizable faces) — then the Pareto
// frontier an administrator would actually choose from.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "core/candidate_design.h"
#include "core/profiler.h"
#include "degrade/cost_model.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Extension: degradation-vs-accuracy frontier (UA-DETRAC, AVG) ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kUaDetrac, "yolov4");
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;

  core::CandidateGridOptions grid_opts;
  grid_opts.min_fraction = 0.05;
  grid_opts.max_fraction = 0.50;
  grid_opts.fraction_step = 0.15;
  grid_opts.num_resolutions = 4;
  grid_opts.include_class_combinations = true;
  auto grid = core::BuildCandidateGrid(*wl.model, grid_opts);
  grid.status().CheckOk();

  core::ProfilerOptions opts;
  opts.use_correction_set = true;
  opts.correction_set_size =
      stats::FractionToCount(wl.dataset->num_frames(), 0.04);
  opts.early_stop = false;
  core::Profiler profiler(*wl.source, *wl.prior, spec, opts);
  stats::Rng rng(0xF0917);
  auto profile = profiler.Generate(*grid, rng);
  profile.status().CheckOk();

  struct FrontierPoint {
    const core::ProfilePoint* point;
    degrade::DegradationSavings savings;
  };
  std::vector<FrontierPoint> all;
  for (const core::ProfilePoint& p : profile->points) {
    auto savings = degrade::EstimateSavings(*wl.dataset, *wl.prior, p.interventions,
                                            wl.model->max_resolution());
    savings.status().CheckOk();
    all.push_back({&p, *savings});
  }

  // Pareto frontier: minimize (err_bound, bytes_fraction,
  // faces_recognizable_fraction) simultaneously.
  auto dominates = [](const FrontierPoint& a, const FrontierPoint& b) {
    bool no_worse = a.point->err_bound <= b.point->err_bound &&
                    a.savings.bytes_fraction <= b.savings.bytes_fraction &&
                    a.savings.faces_recognizable_fraction <=
                        b.savings.faces_recognizable_fraction;
    bool better = a.point->err_bound < b.point->err_bound ||
                  a.savings.bytes_fraction < b.savings.bytes_fraction ||
                  a.savings.faces_recognizable_fraction <
                      b.savings.faces_recognizable_fraction;
    return no_worse && better;
  };
  std::vector<FrontierPoint> frontier;
  for (const FrontierPoint& candidate : all) {
    bool dominated = false;
    for (const FrontierPoint& other : all) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(), [](const FrontierPoint& a, const FrontierPoint& b) {
    return a.point->err_bound < b.point->err_bound;
  });

  util::TablePrinter table({"interventions", "err_bound", "bytes", "energy",
                            "faces_recognizable"});
  for (const FrontierPoint& fp : frontier) {
    table.AddRow({fp.point->interventions.ToString(),
                  util::FormatPercent(std::min(fp.point->err_bound, 10.0)),
                  util::FormatPercent(fp.savings.bytes_fraction),
                  util::FormatPercent(fp.savings.energy_fraction),
                  util::FormatPercent(fp.savings.faces_recognizable_fraction)});
  }
  std::printf("Pareto frontier (%zu of %zu profile points):\n", frontier.size(), all.size());
  table.Print(std::cout);

  std::printf(
      "\nAn administrator walks this frontier instead of Figure 1's sketch:\n"
      "each row is a certified accuracy bound next to the bandwidth/energy\n"
      "and privacy it buys.\n");
  return 0;
}
