// Extension: temporal-coherence frame skipping (§7 future work).
//
// "If videos' unique properties are exploited — for example, a sequence of
// frames are so similar that part of frames can be skipped from processing —
// the quality of the estimated error bound can be further improved." This
// harness measures the idea on both corpora: a full scan that reuses the
// previous frame's output whenever the target-class track set is unchanged
// (the stand-in for a cheap frame-difference detector), reporting how many
// model invocations it saves and how much error the reuse introduces.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Extension: frame skipping via temporal coherence ===\n\n");

  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;

  util::TablePrinter table({"workload", "frames", "invocations_saved", "saved_pct",
                            "avg_exact", "avg_skipped", "induced_err"});
  double worst_induced = 0;
  for (auto preset : {video::ScenePreset::kNightStreet, video::ScenePreset::kUaDetrac}) {
    bench::Workload wl = bench::MakeWorkload(preset, "yolov4");
    auto exact = query::ComputeGroundTruth(*wl.source, spec);
    exact.status().CheckOk();

    // Fresh source so the cache cannot mask the skipping.
    query::FrameOutputSource fresh(*wl.dataset, *wl.model, video::ObjectClass::kCar);
    auto scan = fresh.AllOutputsWithSkipping(spec, wl.model->max_resolution());
    scan.status().CheckOk();
    double avg_skipped = 0;
    for (double v : scan->outputs) avg_skipped += v;
    avg_skipped /= static_cast<double>(scan->outputs.size());
    double induced = query::RelativeError(avg_skipped, exact->y_true);
    worst_induced = std::max(worst_induced, induced);

    table.AddRow({wl.label, std::to_string(wl.dataset->num_frames()),
                  std::to_string(scan->skipped),
                  util::FormatPercent(static_cast<double>(scan->skipped) /
                                      static_cast<double>(wl.dataset->num_frames())),
                  util::FormatDouble(exact->y_true), util::FormatDouble(avg_skipped),
                  util::FormatPercent(induced)});
  }
  table.Print(std::cout);

  std::printf(
      "\nStop-and-go traffic (UA-DETRAC, long dwells) lets the majority of\n"
      "full-scan invocations be skipped at sub-percent induced error; the\n"
      "1-in-50-subsampled night-street stream has little temporal coherence\n"
      "left to exploit. The worst induced error (%.2f%%) is far below the\n"
      "certified bounds, so skipping composes safely with profile truth\n"
      "computation — the paper's §7 intuition, confirmed.\n",
      worst_induced * 100.0);
  return worst_induced < 0.05 ? 0 : 1;
}
