// Extension: noise addition / lossy compression as interventions.
//
// §2.1 lists noise addition and video-compression techniques as further
// degradation methods beyond the paper's three examples; they are modeled
// here as a contrast scale < 1 (objects become harder to detect, encoded
// bitrate drops). Like resolution reduction they are NON-RANDOM: detection
// recall falls systematically, so the basic bound breaks and profile repair
// is required. This harness sweeps the noise knob and reports true error,
// uncorrected and repaired bounds, and the bandwidth saved.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "degrade/cost_model.h"
#include "stats/sampling.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Extension: noise/compression interventions (night-street, AVG) ===\n\n");

  bench::Workload wl = bench::MakeWorkload(video::ScenePreset::kNightStreet, "yolov4");
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto gt = query::ComputeGroundTruth(*wl.source, spec);
  gt.status().CheckOk();

  stats::Rng rng(0x50156);
  int64_t corr_size = stats::FractionToCount(wl.dataset->num_frames(), 0.06);
  auto correction = core::BuildCorrectionSet(*wl.source, spec, corr_size, 0.05, rng);
  correction.status().CheckOk();

  util::TablePrinter table({"noise_level", "true_err", "bound_w/o_corr", "bound_w/_corr",
                            "bytes_saved"});
  const int kTrials = 20;
  int wrong_without = 0;
  int wrong_with = 0;
  for (double noise : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    degrade::InterventionSet iv;
    iv.sample_fraction = 0.5;
    iv.contrast_scale = 1.0 - noise;

    double true_err = 0, without = 0, with_corr = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto result = core::ResultErrorEst(*wl.source, *wl.prior, spec, iv, 0.05, rng);
      result.status().CheckOk();
      auto repaired = core::RepairErrorBound(spec, *result, *correction);
      repaired.status().CheckOk();
      true_err += query::RelativeError(result->estimate.y_approx, gt->y_true);
      without += result->estimate.err_b;
      with_corr += std::min(*repaired, 10.0);
    }
    true_err /= kTrials;
    without /= kTrials;
    with_corr /= kTrials;
    if (without < true_err) ++wrong_without;
    if (with_corr < true_err) ++wrong_with;

    auto savings = degrade::EstimateSavings(*wl.dataset, *wl.prior, iv, 608);
    savings.status().CheckOk();
    table.AddRow({util::FormatDouble(noise, 1), util::FormatDouble(true_err),
                  util::FormatDouble(without) + (without < true_err ? " (WRONG)" : ""),
                  util::FormatDouble(with_corr),
                  util::FormatPercent(1.0 - savings->bytes_fraction)});
  }
  table.Print(std::cout);

  std::printf(
      "\nAs with resolution reduction, heavier noise/compression silently\n"
      "invalidates the basic bound (%d of 7 levels WRONG) while the repaired\n"
      "bound stays valid (%d of 7 WRONG) — and buys up to ~80%% of the bytes.\n",
      wrong_without, wrong_with);
  return wrong_with == 0 ? 0 : 1;
}
