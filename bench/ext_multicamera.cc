// Extension: multi-camera stratified combination quality.
//
// The paper's system model has many cameras feeding one processor (§1). For
// the city-wide mean, three estimators are compared over repeated capture
// windows:
//   * STRATIFIED — per-camera Algorithm-1 intervals combined with
//     population weights and a split failure budget (core/combine.h);
//   * POOLED — all samples thrown into one Algorithm-1 estimate, as if the
//     cameras covered one homogeneous population (ignores per-camera
//     sampling fractions; biased when fractions differ);
//   * WORST-CAMERA — the naive bound max over per-camera bounds.
// Reported: average bound and empirical coverage of the pooled truth.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "camera/camera.h"
#include "camera/central_system.h"
#include "bench/bench_common.h"
#include "core/avg_estimator.h"
#include "core/combine.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace smokescreen;

int main() {
  std::printf("=== Extension: multi-camera combination (2 feeds, AVG) ===\n\n");

  bench::Workload busy = bench::MakeWorkload(video::ScenePreset::kMvi40771, "yolov4");
  bench::Workload quiet = bench::MakeWorkload(video::ScenePreset::kNightStreet, "yolov4", 4000);

  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto gt_busy = query::ComputeGroundTruth(*busy.source, spec);
  auto gt_quiet = query::ComputeGroundTruth(*quiet.source, spec);
  gt_busy.status().CheckOk();
  gt_quiet.status().CheckOk();
  double n_busy = static_cast<double>(busy.dataset->num_frames());
  double n_quiet = static_cast<double>(quiet.dataset->num_frames());
  double pooled_truth = (gt_busy->y_true * n_busy + gt_quiet->y_true * n_quiet) /
                        (n_busy + n_quiet);
  std::printf("per-feed truth: busy %.3f (%d frames), quiet %.3f (%d frames); pooled %.3f\n\n",
              gt_busy->y_true, static_cast<int>(n_busy), gt_quiet->y_true,
              static_cast<int>(n_quiet), pooled_truth);

  // The busy camera samples lightly, the quiet one heavily — the unequal-
  // fraction regime where naive pooling goes wrong.
  camera::CameraConfig cfg_busy;
  cfg_busy.camera_id = 1;
  cfg_busy.interventions.sample_fraction = 0.05;
  camera::CameraConfig cfg_quiet;
  cfg_quiet.camera_id = 2;
  cfg_quiet.interventions.sample_fraction = 0.40;
  camera::Camera cam_busy(cfg_busy, *busy.dataset, *busy.prior, 608);
  camera::Camera cam_quiet(cfg_quiet, *quiet.dataset, *quiet.prior, 608);

  auto central = camera::CentralSystem::Create(spec, 0.05);
  central.status().CheckOk();
  central->AddFeed(cam_busy, *busy.model).CheckOk();
  central->AddFeed(cam_quiet, *quiet.model).CheckOk();

  const int kTrials = 60;
  stats::Rng rng(0xCAFE);
  core::SmokescreenMeanEstimator estimator;
  camera::NetworkLink link(camera::NetworkLinkConfig{});

  double b_strat = 0, b_pooled = 0, b_worst = 0;
  int cov_strat = 0, cov_pooled = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto batch_busy = cam_busy.CaptureAndTransmit(link, rng);
    auto batch_quiet = cam_quiet.CaptureAndTransmit(link, rng);
    batch_busy.status().CheckOk();
    batch_quiet.status().CheckOk();
    central->Ingest(*batch_busy).CheckOk();
    central->Ingest(*batch_quiet).CheckOk();

    auto city = central->CityWideEstimate();
    city.status().CheckOk();
    b_strat += std::min(city->estimate.err_b, 10.0);
    if (query::RelativeError(city->estimate.y_approx, pooled_truth) <= city->estimate.err_b) {
      ++cov_strat;
    }

    // POOLED: concatenate both samples, pretend one population.
    auto out_busy = busy.source->Outputs(spec, batch_busy->frame_indices, 608);
    auto out_quiet = quiet.source->Outputs(spec, batch_quiet->frame_indices, 608);
    out_busy.status().CheckOk();
    out_quiet.status().CheckOk();
    std::vector<double> pooled = *out_busy;
    pooled.insert(pooled.end(), out_quiet->begin(), out_quiet->end());
    auto pooled_est = estimator.EstimateMean(
        pooled, busy.dataset->num_frames() + quiet.dataset->num_frames(), 0.05);
    pooled_est.status().CheckOk();
    b_pooled += std::min(pooled_est->err_b, 10.0);
    if (query::RelativeError(pooled_est->y_approx, pooled_truth) <= pooled_est->err_b) {
      ++cov_pooled;
    }

    auto e1 = central->CameraEstimate(1);
    auto e2 = central->CameraEstimate(2);
    e1.status().CheckOk();
    e2.status().CheckOk();
    b_worst += std::min(std::max(e1->err_b, e2->err_b), 10.0);
  }

  util::TablePrinter table({"method", "avg_bound", "coverage_pct"});
  table.AddRow({"stratified (ours)", util::FormatDouble(b_strat / kTrials),
                util::FormatPercent(static_cast<double>(cov_strat) / kTrials)});
  table.AddRow({"pooled (naive)", util::FormatDouble(b_pooled / kTrials),
                util::FormatPercent(static_cast<double>(cov_pooled) / kTrials)});
  table.AddRow({"worst-camera bound", util::FormatDouble(b_worst / kTrials), "-"});
  table.Print(std::cout);

  std::printf(
      "\nStratified combination keeps validity under unequal per-camera\n"
      "sampling fractions; naive pooling over-weights the heavily sampled\n"
      "quiet camera and its \"bound\" silently loses coverage.\n");
  return 0;
}
