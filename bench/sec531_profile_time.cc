// §5.3.1: profile generation time. The query employs YOLOv4 to compute the
// average number of cars in UA-DETRAC video; ten resolutions are the
// intervention candidates, the loosest image removal is "no restricted
// class", and the highest sample fraction equals the determined correction
// fraction 0.04. The paper counts 6,084 model invocations (4% of 15,210
// frames at each of 10 resolutions) dominating a ~3 minute profile, with
// the estimation stage taking only tens of milliseconds per intervention
// set. Model-invocation counts are hardware-independent and must match
// exactly; wall-clock splits are reported for the simulated pipeline and
// extrapolated to the paper's GPU-scale per-frame cost.
//
// The bench runs through engine::Runtime/Session with the profile cache
// DISABLED: the second Profile() call must deliberately regenerate (same
// seed -> identical samples -> every output served from the memo cache) to
// time the estimation stage alone.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/sampling.h"
#include "core/candidate_design.h"
#include "core/profiler.h"
#include "engine/session.h"
#include "query/output_store.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace smokescreen;

int main(int argc, char** argv) {
  // Strips --metrics-out <path> (or honors $SMOKESCREEN_METRICS_OUT) and
  // exports the metrics registry when main returns.
  bench::MetricsDumpGuard metrics_guard(argc, argv);
  int threads = 1;  // Serial by default: the paper's timing is single-stream.
  int64_t batch_size = 0;
  int64_t pool_min_chunk = 0;  // 0 = source default.
  std::string output_store;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      threads = static_cast<int>(*parsed);
    } else if (arg == "--batch-size" && i + 1 < argc) {
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      batch_size = *parsed;
      if (batch_size < 0) {
        std::fprintf(stderr, "--batch-size must be >= 0 (0 = unlimited)\n");
        return 2;
      }
    } else if (arg == "--pool-min-chunk" && i + 1 < argc) {
      auto parsed = util::ParseInt(argv[++i]);
      parsed.status().CheckOk();
      pool_min_chunk = *parsed;
      if (pool_min_chunk < 0) {
        std::fprintf(stderr, "--pool-min-chunk must be >= 0 (0 = default)\n");
        return 2;
      }
    } else if (arg == "--output-store" && i + 1 < argc) {
      output_store = argv[++i];
      if (output_store.empty()) {
        std::fprintf(stderr, "--output-store path must be non-empty\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: sec531_profile_time [--threads N] [--batch-size N]"
                   " [--pool-min-chunk N] [--output-store P] [--metrics-out P]\n");
      return 2;
    }
  }

  std::printf("=== Section 5.3.1: profile generation time ===\n\n");

  // A dedicated runtime (not the shared bench one): the executor width and
  // batch cap are this bench's flags, and the store path must be validated
  // before any profiling work (an existing store warm-starts the workload; a
  // fresh path must point into an existing directory).
  engine::RuntimeOptions runtime_opts;
  runtime_opts.num_threads = threads;
  runtime_opts.max_batch_size = batch_size;
  runtime_opts.pool_min_chunk = pool_min_chunk;
  auto runtime = engine::Runtime::Create(runtime_opts);
  runtime.status().CheckOk();
  engine::WorkloadDesc desc;
  desc.preset = video::ScenePreset::kUaDetrac;
  desc.output_store_path = output_store;
  auto workload = (*runtime)->GetWorkload(desc);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 2;
  }
  const bool warm_start = (*workload)->warm_start_entries() > 0;
  if (!(*workload)->warm_start_damage().empty()) {
    std::fprintf(stderr, "warning: %s is damaged (%s); loading verified columns only\n",
                 output_store.c_str(), (*workload)->warm_start_damage().c_str());
  }
  if (warm_start) {
    std::printf("warm-started %lld cached outputs from %s\n\n",
                static_cast<long long>((*workload)->warm_start_entries()),
                output_store.c_str());
  }
  query::FrameOutputSource& source = (*workload)->source();

  // Candidate grid: 10 resolutions x fractions {0.01..0.04} (the determined
  // correction fraction is also the highest sample fraction).
  core::CandidateGridOptions grid_opts;
  grid_opts.min_fraction = 0.01;
  grid_opts.max_fraction = 0.04;
  grid_opts.fraction_step = 0.01;
  grid_opts.num_resolutions = 10;
  grid_opts.include_class_combinations = false;  // Loosest removal: none.
  auto grid = core::BuildCandidateGrid((*workload)->detector(), grid_opts);
  grid.status().CheckOk();

  engine::SessionConfig config;
  config.spec.aggregate = query::AggregateFunction::kAvg;
  config.seed = 531;
  config.profiler.use_correction_set = false;  // Isolate the candidate-grid invocations.
  config.profiler.early_stop = false;
  config.use_profile_cache = false;  // The replay below must regenerate.
  auto session = (*runtime)->StartSession(*workload, config);
  session.status().CheckOk();

  source.ResetCounters();
  util::Timer total_timer;
  auto profile = (*session)->Profile(*grid);
  profile.status().CheckOk();
  double total_seconds = total_timer.ElapsedSeconds();
  // Copy: the replay below overwrites last_report().
  const core::ProfilerReport report = (*session)->last_report();

  int64_t invocations = source.model_invocations();
  int64_t expected =
      10 * stats::FractionToCount((*workload)->dataset().num_frames(), 0.04);

  // Estimation-stage-only timing: Profile() reseeds from the session seed, so
  // the second generation draws the identical samples and every model output
  // comes from the cache.
  source.ResetCounters();
  util::Timer est_timer;
  auto profile2 = (*session)->Profile(*grid);
  profile2.status().CheckOk();
  double est_seconds = est_timer.ElapsedSeconds();
  double per_candidate_ms = est_seconds * 1000.0 / static_cast<double>(grid->size());

  util::TablePrinter table({"quantity", "value"});
  table.AddRow({"profiler threads", std::to_string(report.num_threads)});
  table.AddRow({"hypercube groups", std::to_string(report.num_groups)});
  table.AddRow({"hypercube stage wall-clock",
                util::FormatDouble(report.groups_seconds, 3) + " s"});
  table.AddRow({"intervention candidates", std::to_string(grid->size())});
  table.AddRow({"model invocations", std::to_string(invocations)});
  table.AddRow({"expected (paper: 6084 = 4% x 15210 x 10 res)", std::to_string(expected)});
  table.AddRow({"cache hits (reuse strategy)", std::to_string(source.cache_hits())});
  if (warm_start) {
    table.AddRow({"served from output store", std::to_string(expected - invocations)});
  }
  table.AddRow({"total profile time (simulated model)",
                util::FormatDouble(total_seconds, 3) + " s"});
  table.AddRow({"estimation-only time (outputs cached)",
                util::FormatDouble(est_seconds, 3) + " s"});
  table.AddRow({"estimation per intervention set",
                util::FormatDouble(per_candidate_ms, 3) + " ms"});
  table.AddRow({"extrapolated @30ms/frame GPU inference",
                util::FormatDouble(static_cast<double>(invocations) * 0.030, 1) +
                    " s (paper: ~3 min)"});
  table.Print(std::cout);

  std::printf(
      "\nPaper-shape check: invocation count matches the paper's arithmetic\n"
      "exactly (%lld vs %lld), estimation is tens of milliseconds per\n"
      "intervention set, so profile time is dominated by model processing.\n",
      static_cast<long long>(invocations), static_cast<long long>(expected));

  // The two generations must agree bit-for-bit: same workload, same seed.
  if (!engine::ProfilesBitIdentical(**profile, **profile2)) {
    std::fprintf(stderr, "replayed profile diverged from the first generation\n");
    return 1;
  }

  if (!output_store.empty()) {
    (*runtime)->SaveStore(*workload).CheckOk();
    std::printf("output store saved to %s (%lld entries)\n", output_store.c_str(),
                static_cast<long long>(source.ExportStore().TotalEntries()));
  }
  // A warm store legitimately serves some (or all) of the expected
  // invocations as cache reads; cold runs must still match exactly.
  if (warm_start) return invocations <= expected ? 0 : 1;
  return invocations == expected ? 0 : 1;
}
