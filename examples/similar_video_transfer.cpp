// Similar-video profile transfer (§3.3.1 fallback, §5.3.2).
//
// When video A is too sensitive even for a random-interventions correction
// set, the administrator can profile a visually similar, less sensitive
// video B (same camera, different time) and transfer the tradeoff curve.
// This example profiles both MVI_40771-like (video A) and MVI_40775-like
// (video B) sequences and reports how closely B's profile tracks A's.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/estimator_api.h"
#include "detect/models.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

namespace {

// Error bound of the AVG query on `source` from a sample of `sample_size`
// frames at `resolution`, averaged over a few trials.
double BoundFor(query::FrameOutputSource& source, const detect::ClassPriorIndex& prior,
                int64_t sample_size, int resolution, stats::Rng& rng) {
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  degrade::InterventionSet iv;
  iv.sample_fraction = static_cast<double>(sample_size) /
                       static_cast<double>(source.dataset().num_frames());
  iv.resolution = resolution;
  const int kTrials = 10;
  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto result = core::ResultErrorEst(source, prior, spec, iv, 0.05, rng);
    result.status().CheckOk();
    total += result->estimate.err_b;
  }
  return total / kTrials;
}

}  // namespace

int main() {
  std::printf("=== Profile transfer between similar videos (Fig. 10 style) ===\n\n");
  auto video_a = video::MakePreset(video::ScenePreset::kMvi40771);
  auto video_b = video::MakePreset(video::ScenePreset::kMvi40775);
  video_a.status().CheckOk();
  video_b.status().CheckOk();
  std::printf("video A: %s, %lld frames (sensitive)\n", video_a->name().c_str(),
              static_cast<long long>(video_a->num_frames()));
  std::printf("video B: %s, %lld frames (same camera, different time)\n\n",
              video_b->name().c_str(), static_cast<long long>(video_b->num_frames()));

  detect::SimYoloV4 yolo;
  detect::SimMtcnn mtcnn;
  auto prior_a = detect::ClassPriorIndex::Build(*video_a, yolo, mtcnn);
  auto prior_b = detect::ClassPriorIndex::Build(*video_b, yolo, mtcnn);
  prior_a.status().CheckOk();
  prior_b.status().CheckOk();
  query::FrameOutputSource source_a(*video_a, yolo, video::ObjectClass::kCar);
  query::FrameOutputSource source_b(*video_b, yolo, video::ObjectClass::kCar);

  stats::Rng rng(17);

  // Sweep 1: error bound vs sample SIZE (resolution fixed at 608).
  std::printf("Sweep 1: reduced frame sampling (resolution 608)\n");
  util::TablePrinter t1({"sample_size", "bound_A", "bound_B", "abs_diff"});
  for (int64_t size : {20, 40, 60, 80, 100, 200, 500}) {
    double a = BoundFor(source_a, *prior_a, size, 608, rng);
    double b = BoundFor(source_b, *prior_b, size, 608, rng);
    t1.AddRow({std::to_string(size), util::FormatDouble(a), util::FormatDouble(b),
               util::FormatDouble(std::abs(a - b))});
  }
  t1.Print(std::cout);

  // Sweep 2: error bound vs resolution (sample size fixed at 500).
  std::printf("\nSweep 2: reduced resolution (sample size 500)\n");
  util::TablePrinter t2({"resolution", "bound_A", "bound_B", "abs_diff"});
  double max_diff = 0;
  for (int res : {128, 224, 320, 416, 512, 608}) {
    double a = BoundFor(source_a, *prior_a, 500, res, rng);
    double b = BoundFor(source_b, *prior_b, 500, res, rng);
    max_diff = std::max(max_diff, std::abs(a - b));
    t2.AddRow({std::to_string(res), util::FormatDouble(a), util::FormatDouble(b),
               util::FormatDouble(std::abs(a - b))});
  }
  t2.Print(std::cout);

  std::printf(
      "\nMax profile difference across the resolution sweep: %.2f%%\n"
      "A visually similar video yields a close profile, so B can guide the\n"
      "degradation choice for A without ever touching A's frames.\n",
      max_diff * 100.0);
  return 0;
}
