// Similar-video profile transfer (§3.3.1 fallback, §5.3.2).
//
// When video A is too sensitive even for a random-interventions correction
// set, the administrator can profile a visually similar, less sensitive
// video B (same camera, different time) and transfer the tradeoff curve.
// This example profiles both MVI_40771-like (video A) and MVI_40775-like
// (video B) sequences and reports how closely B's profile tracks A's.
//
// One engine::Runtime serves both corpora: each (dataset, model) pair is a
// separate shared workload with its own memoized output cache, and each
// video gets its own Session whose Execute() calls draw deterministic
// per-call sample streams.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "engine/runtime.h"
#include "engine/session.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

namespace {

// Error bound of the AVG query through `session` from a sample of
// `sample_size` frames at `resolution`, averaged over a few trials.
double BoundFor(engine::Session& session, int64_t sample_size, int resolution) {
  degrade::InterventionSet iv;
  iv.sample_fraction = static_cast<double>(sample_size) /
                       static_cast<double>(session.workload()->dataset().num_frames());
  iv.resolution = resolution;
  const int kTrials = 10;
  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto result = session.Execute(iv);
    result.status().CheckOk();
    total += result->estimate.err_b;
  }
  return total / kTrials;
}

}  // namespace

int main() {
  std::printf("=== Profile transfer between similar videos (Fig. 10 style) ===\n\n");
  auto runtime = engine::Runtime::Create({});
  runtime.status().CheckOk();

  engine::WorkloadDesc desc_a;
  desc_a.preset = video::ScenePreset::kMvi40771;
  engine::WorkloadDesc desc_b;
  desc_b.preset = video::ScenePreset::kMvi40775;
  auto workload_a = (*runtime)->GetWorkload(desc_a);
  auto workload_b = (*runtime)->GetWorkload(desc_b);
  workload_a.status().CheckOk();
  workload_b.status().CheckOk();
  std::printf("video A: %s, %lld frames (sensitive)\n",
              (*workload_a)->dataset().name().c_str(),
              static_cast<long long>((*workload_a)->dataset().num_frames()));
  std::printf("video B: %s, %lld frames (same camera, different time)\n\n",
              (*workload_b)->dataset().name().c_str(),
              static_cast<long long>((*workload_b)->dataset().num_frames()));

  engine::SessionConfig config;
  config.spec.aggregate = query::AggregateFunction::kAvg;
  config.seed = 17;
  auto session_a = (*runtime)->StartSession(*workload_a, config);
  auto session_b = (*runtime)->StartSession(*workload_b, config);
  session_a.status().CheckOk();
  session_b.status().CheckOk();

  // Sweep 1: error bound vs sample SIZE (resolution fixed at 608).
  std::printf("Sweep 1: reduced frame sampling (resolution 608)\n");
  util::TablePrinter t1({"sample_size", "bound_A", "bound_B", "abs_diff"});
  for (int64_t size : {20, 40, 60, 80, 100, 200, 500}) {
    double a = BoundFor(**session_a, size, 608);
    double b = BoundFor(**session_b, size, 608);
    t1.AddRow({std::to_string(size), util::FormatDouble(a), util::FormatDouble(b),
               util::FormatDouble(std::abs(a - b))});
  }
  t1.Print(std::cout);

  // Sweep 2: error bound vs resolution (sample size fixed at 500).
  std::printf("\nSweep 2: reduced resolution (sample size 500)\n");
  util::TablePrinter t2({"resolution", "bound_A", "bound_B", "abs_diff"});
  double max_diff = 0;
  for (int res : {128, 224, 320, 416, 512, 608}) {
    double a = BoundFor(**session_a, 500, res);
    double b = BoundFor(**session_b, 500, res);
    max_diff = std::max(max_diff, std::abs(a - b));
    t2.AddRow({std::to_string(res), util::FormatDouble(a), util::FormatDouble(b),
               util::FormatDouble(std::abs(a - b))});
  }
  t2.Print(std::cout);

  std::printf(
      "\nMax profile difference across the resolution sweep: %.2f%%\n"
      "A visually similar video yields a close profile, so B can guide the\n"
      "degradation choice for A without ever touching A's frames.\n",
      max_diff * 100.0);
  return 0;
}
