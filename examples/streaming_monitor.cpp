// Streaming monitor: deploying a chosen degradation on upcoming video.
//
// The profile was generated on a representative portion of video; the
// cameras then keep streaming DEGRADED frames week after week. This example
// shows the deployment loop of §3.1:
//   1. profile last week's video, choose a tradeoff;
//   2. stream this week's degraded outputs through OnlineMonitor, which
//      keeps a running Algorithm-1 estimate and checks consistency with the
//      profiled answer;
//   3. when traffic patterns change (here: a simulated event week with far
//      denser traffic), the monitor flags drift — the cue to re-profile;
//   4. after re-profiling on the drifted traffic, OnlineMonitor::Reset
//      clears the stale stream and monitoring resumes against the fresh
//      reference — the recovery half of the loop.
//
// Each simulated week is a CUSTOM corpus (not a named preset), so it enters
// the runtime through Runtime::AdoptWorkload: the caller builds the scene
// and detector, and the runtime wires its registry/batching/compute policy
// into the workload's shared output source.

#include <cstdio>
#include <memory>

#include "core/estimator_api.h"
#include "core/online_monitor.h"
#include "detect/models.h"
#include "engine/runtime.h"
#include "engine/session.h"
#include "query/executor.h"
#include "stats/sampling.h"
#include "video/presets.h"

using namespace smokescreen;

namespace {

// Simulates `cfg` and registers it with the runtime as an adopted workload.
engine::WorkloadHandle AdoptWeek(engine::Runtime& runtime, const video::SceneConfig& cfg) {
  auto scene = video::SimulateScene(cfg);
  scene.status().CheckOk();
  auto dataset = std::make_unique<video::VideoDataset>(std::move(scene).ValueOrDie());
  auto detector = std::make_unique<detect::SimYoloV4>();
  detect::SimMtcnn mtcnn;
  auto prior = detect::ClassPriorIndex::Build(*dataset, *detector, mtcnn);
  prior.status().CheckOk();
  auto workload = runtime.AdoptWorkload(
      cfg.name, std::move(dataset), std::move(detector),
      std::make_unique<detect::ClassPriorIndex>(std::move(prior).ValueOrDie()),
      video::ObjectClass::kCar);
  workload.status().CheckOk();
  return *workload;
}

// Simulates one week of degraded operation: sample frames from the week's
// workload under `iv`, stream outputs through a fresh monitor, and report.
void RunWeek(const char* label, const engine::Workload& week, const query::QuerySpec& spec,
             const degrade::InterventionSet& iv, double profiled_answer, stats::Rng& rng) {
  auto monitor = core::OnlineMonitor::Create(spec, week.dataset().num_frames(), 0.05);
  monitor.status().CheckOk();

  auto view = degrade::DegradedView::Create(week.dataset(), week.prior(), iv,
                                            week.detector().max_resolution(), rng);
  view.status().CheckOk();
  auto outputs = week.source().Outputs(spec, view->sampled_frames(), view->resolution());
  outputs.status().CheckOk();

  bool drifted = false;
  int64_t drift_at = 0;
  for (size_t i = 0; i < outputs->size(); ++i) {
    monitor->Observe((*outputs)[i]);
    // Check every 50 frames once warmed up.
    if (monitor->count() >= 100 && monitor->count() % 50 == 0 && !drifted) {
      auto consistent = monitor->IsConsistentWith(profiled_answer, /*slack=*/0.25);
      consistent.status().CheckOk();
      if (!*consistent) {
        drifted = true;
        drift_at = monitor->count();
      }
    }
  }
  auto estimate = monitor->CurrentEstimate();
  estimate.status().CheckOk();
  std::printf("%-22s streamed %5zu frames: estimate %.3f (bound %.2f%%), profiled %.3f -> %s\n",
              label, outputs->size(), estimate->y_approx, estimate->err_b * 100.0,
              profiled_answer,
              drifted ? ("DRIFT at frame " + std::to_string(drift_at) + ", re-profile").c_str()
                      : "consistent");
}

}  // namespace

int main() {
  std::printf("=== Streaming deployment monitor ===\n\n");
  auto runtime = engine::Runtime::Create({});
  runtime.status().CheckOk();

  // Week 0: the profiled reference week.
  video::SceneConfig base = video::PresetConfig(video::ScenePreset::kNightStreet);
  base.num_frames = 5000;
  base.name = "week0";
  base.seed = 9000;
  engine::WorkloadHandle week0 = AdoptWeek(**runtime, base);

  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;

  degrade::InterventionSet iv;
  iv.sample_fraction = 0.2;  // The deployed degradation setting.

  stats::Rng rng(77);
  auto profiled = core::ResultErrorEst(week0->source(), week0->prior(), spec, iv, 0.05, rng);
  profiled.status().CheckOk();
  std::printf("profiled on week0: AVG=%.3f (bound %.2f%%), deployed setting %s\n\n",
              profiled->estimate.y_approx, profiled->estimate.err_b * 100.0,
              iv.ToString().c_str());

  // Weeks 1-2: same traffic process, new realizations -> consistent.
  for (int week = 1; week <= 2; ++week) {
    video::SceneConfig cfg = base;
    cfg.name = "week" + std::to_string(week);
    cfg.seed = 9000 + static_cast<uint64_t>(week);
    engine::WorkloadHandle workload = AdoptWeek(**runtime, cfg);
    RunWeek(cfg.name.c_str(), *workload, spec, iv, profiled->estimate.y_approx, rng);
  }

  // Week 3: a festival triples traffic -> the monitor must flag drift.
  {
    video::SceneConfig cfg = base;
    cfg.name = "week3-festival";
    cfg.seed = 9003;
    cfg.car_rate *= 3.0;
    engine::WorkloadHandle workload = AdoptWeek(**runtime, cfg);
    RunWeek(cfg.name.c_str(), *workload, spec, iv, profiled->estimate.y_approx, rng);
  }

  // Week 4: the festival persists. Re-profile on the drifted traffic, Reset
  // a monitor that had been fed the stale stream, and verify consistency is
  // restored against the fresh reference.
  {
    video::SceneConfig festival = base;
    festival.car_rate *= 3.0;
    festival.name = "week3-festival";
    festival.seed = 9003;
    engine::WorkloadHandle week3 = AdoptWeek(**runtime, festival);
    auto reprofiled =
        core::ResultErrorEst(week3->source(), week3->prior(), spec, iv, 0.05, rng);
    reprofiled.status().CheckOk();
    std::printf("\nre-profiled on week3: AVG=%.3f (bound %.2f%%)\n",
                reprofiled->estimate.y_approx, reprofiled->estimate.err_b * 100.0);

    // One long-lived monitor: poisoned by the stale week-0-calibrated view,
    // Reset, then fed week 4 of festival traffic.
    video::SceneConfig cfg4 = festival;
    cfg4.name = "week4-festival";
    cfg4.seed = 9004;
    engine::WorkloadHandle week4 = AdoptWeek(**runtime, cfg4);
    auto monitor = core::OnlineMonitor::Create(spec, week4->dataset().num_frames(), 0.05);
    monitor.status().CheckOk();
    monitor->Observe(0.0);  // Residue from before the reset.
    monitor->Reset();

    auto view4 = degrade::DegradedView::Create(week4->dataset(), week4->prior(), iv,
                                               week4->detector().max_resolution(), rng);
    view4.status().CheckOk();
    auto outputs4 =
        week4->source().Outputs(spec, view4->sampled_frames(), view4->resolution());
    outputs4.status().CheckOk();
    monitor->ObserveAll(*outputs4);
    auto consistent = monitor->IsConsistentWith(reprofiled->estimate.y_approx, 0.25);
    consistent.status().CheckOk();
    auto estimate = monitor->CurrentEstimate();
    estimate.status().CheckOk();
    std::printf("%-22s streamed %5zu frames: estimate %.3f (bound %.2f%%), re-profiled %.3f -> %s\n",
                "week4-festival", outputs4->size(), estimate->y_approx,
                estimate->err_b * 100.0, reprofiled->estimate.y_approx,
                *consistent ? "consistent (recovered)" : "STILL DRIFTING");
  }

  std::printf(
      "\nThe profiled answer stays valid while traffic looks like the\n"
      "profiled week; the event week trips the drift check, telling the\n"
      "administrator to regenerate the profile — and after re-profiling,\n"
      "a Reset monitor confirms the new reference fits the new traffic.\n");
  return 0;
}
