// City deployment: the paper's full §1 system model in one program.
//
// Four networked cameras cover different locations (two busy intersections,
// one quieter arterial, one night street). Each applies its own
// administrator-chosen degradation ON DEVICE, transmits the surviving frames
// over a constrained uplink, and the central system answers the city-wide
// "average cars per frame" query with a certified bound — combining the four
// per-camera Algorithm-1 intervals by stratified weighting.
//
// A second capture window then runs through a MISBEHAVING network (bursty
// loss on every link, one camera fully blacked out): retries recover part of
// the loss, the blacked-out feed is demoted, the strict city-wide path
// refuses to answer, and the partial policy returns an honestly wider
// estimate with coverage < 1.

#include <cstdio>
#include <iostream>
#include <memory>

#include "camera/camera.h"
#include "camera/central_system.h"
#include "camera/fault_injector.h"
#include "camera/network_link.h"
#include "detect/models.h"
#include "engine/runtime.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

namespace {

struct Site {
  const char* name;
  video::SceneConfig scene;
  degrade::InterventionSet interventions;
};

}  // namespace

int main() {
  std::printf("=== City-wide deployment: 4 cameras, 1 query processor ===\n\n");

  // --- Site definitions -----------------------------------------------------
  std::vector<Site> sites;
  {
    video::SceneConfig busy = video::PresetConfig(video::ScenePreset::kMvi40771);
    busy.num_frames = 3000;

    Site s1{"downtown-junction", busy, {}};
    s1.scene.name = "downtown-junction";
    s1.scene.seed = 101;
    s1.interventions.sample_fraction = 0.15;
    s1.interventions.resolution = 416;
    sites.push_back(s1);

    Site s2{"harbor-crossing", busy, {}};
    s2.scene.name = "harbor-crossing";
    s2.scene.seed = 102;
    s2.scene.car_rate *= 0.8;
    s2.interventions.sample_fraction = 0.15;
    s2.interventions.resolution = 416;
    sites.push_back(s2);

    Site s3{"arterial-road", busy, {}};
    s3.scene.name = "arterial-road";
    s3.scene.seed = 103;
    s3.scene.car_rate *= 0.4;
    s3.interventions.sample_fraction = 0.25;  // Quieter: needs more frames.
    sites.push_back(s3);

    Site s4{"night-street", video::PresetConfig(video::ScenePreset::kNightStreet), {}};
    s4.scene.num_frames = 3000;
    s4.scene.name = "night-street-cam";
    s4.scene.seed = 104;
    s4.scene.full_resolution = 608;  // Same camera hardware fleet.
    s4.interventions.sample_fraction = 0.30;
    // Privacy-sensitive residential area: drop frames with people.
    s4.interventions.restricted.Add(video::ObjectClass::kPerson);
    sites.push_back(s4);
  }

  // --- Build feeds, cameras, central system ---------------------------------
  // The per-site corpora are custom simulated scenes, so each enters the
  // runtime via AdoptWorkload; the workload handles own the feeds and the
  // priors the cameras reference, and each site's output source (used for
  // ground-truth validation) is runtime-wired.
  auto runtime = engine::Runtime::Create({});
  runtime.status().CheckOk();
  detect::SimYoloV4 yolo;
  detect::SimMtcnn mtcnn;
  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto central = camera::CentralSystem::Create(spec, 0.05);
  central.status().CheckOk();

  std::vector<engine::WorkloadHandle> workloads;
  std::vector<std::unique_ptr<camera::Camera>> cameras;
  double pooled_truth_numerator = 0;
  double pooled_truth_denominator = 0;
  for (size_t i = 0; i < sites.size(); ++i) {
    auto feed = video::SimulateScene(sites[i].scene);
    feed.status().CheckOk();
    auto dataset = std::make_unique<video::VideoDataset>(std::move(feed).ValueOrDie());
    auto detector = std::make_unique<detect::SimYoloV4>();
    auto prior = detect::ClassPriorIndex::Build(*dataset, *detector, mtcnn);
    prior.status().CheckOk();
    auto workload = (*runtime)->AdoptWorkload(
        sites[i].name, std::move(dataset), std::move(detector),
        std::make_unique<detect::ClassPriorIndex>(std::move(prior).ValueOrDie()),
        video::ObjectClass::kCar);
    workload.status().CheckOk();
    workloads.push_back(*workload);

    camera::CameraConfig config;
    config.camera_id = static_cast<int>(i + 1);
    config.interventions = sites[i].interventions;
    cameras.push_back(std::make_unique<camera::Camera>(
        config, workloads.back()->dataset(), workloads.back()->prior(),
        yolo.max_resolution()));
    central->AddFeed(*cameras.back(), yolo).CheckOk();

    // Ground truth for validation only.
    auto gt = query::ComputeGroundTruth(workloads.back()->source(), spec);
    gt.status().CheckOk();
    pooled_truth_numerator +=
        gt->y_true * static_cast<double>(workloads.back()->dataset().num_frames());
    pooled_truth_denominator += static_cast<double>(workloads.back()->dataset().num_frames());
  }
  double pooled_truth = pooled_truth_numerator / pooled_truth_denominator;

  // --- One capture window ---------------------------------------------------
  camera::NetworkLinkConfig link_config;
  link_config.bandwidth_bytes_per_sec = 2.0e6;  // A constrained shared uplink.
  stats::Rng rng(55);

  util::TablePrinter table({"camera", "interventions", "frames_sent", "megabytes",
                            "link_busy_s", "estimate", "err_bound"});
  double total_mb = 0;
  for (size_t i = 0; i < cameras.size(); ++i) {
    camera::NetworkLink link(link_config);
    auto batch = cameras[i]->CaptureAndTransmit(link, rng);
    batch.status().CheckOk();
    central->Ingest(*batch).CheckOk();
    auto estimate = central->CameraEstimate(cameras[i]->camera_id());
    estimate.status().CheckOk();
    double mb = static_cast<double>(link.total_bytes()) / 1e6;
    total_mb += mb;
    table.AddRow({sites[i].name, sites[i].interventions.ToString(),
                  std::to_string(batch->frame_indices.size()), util::FormatDouble(mb, 1),
                  util::FormatDouble(link.BusySeconds(), 1),
                  util::FormatDouble(estimate->y_approx, 3),
                  util::FormatPercent(estimate->err_b)});
  }
  table.Print(std::cout);

  auto city = central->CityWideEstimate();
  city.status().CheckOk();
  double realized = query::RelativeError(city->estimate.y_approx, pooled_truth);
  std::printf(
      "\ncity-wide AVG cars/frame: %.3f  (bound %.2f%% at %.0f%% confidence)\n"
      "pooled truth (hidden in production): %.3f -> realized error %.2f%%\n"
      "total uplink volume: %.1f MB; %lld frames covered by the estimate\n",
      city->estimate.y_approx, city->estimate.err_b * 100.0,
      (1.0 - city->total_delta) * 100.0, pooled_truth, realized * 100.0, total_mb,
      static_cast<long long>(city->total_population));
  std::printf(
      "\nEvery camera degraded its own feed (the night camera even deleted\n"
      "all person frames before transmission), yet the city still gets a\n"
      "certified aggregate answer.\n");

  // --- A second window over a misbehaving network ---------------------------
  std::printf("\n=== Stormy-day window: bursty loss everywhere, one camera dark ===\n\n");

  camera::FaultProfile bursty;
  bursty.loss_prob = 0.05;
  bursty.p_good_to_bad = 0.1;
  bursty.p_bad_to_good = 0.3;
  bursty.bad_loss_prob = 0.8;  // ~20% loss overall, in bursts.
  bursty.latency_per_frame_sec = 0.002;
  camera::FaultProfile dark = bursty;
  dark.blackouts.push_back(camera::FaultProfile::Blackout::Forever());

  camera::TransmitPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_sec = 0.01;

  util::TablePrinter storm_table({"camera", "attempted", "delivered", "lost", "retx",
                                  "retx_energy_mJ", "feed_state"});
  for (size_t i = 0; i < cameras.size(); ++i) {
    // harbor-crossing (camera 2) goes fully dark this window.
    camera::FaultProfile profile = (i == 1) ? dark : bursty;
    profile.seed = 7700 + static_cast<uint64_t>(i);
    auto injector = camera::FaultInjector::Create(profile);
    injector.status().CheckOk();
    auto link = camera::NetworkLink::Create(link_config);
    link.status().CheckOk();
    auto batch = cameras[i]->CaptureAndTransmit(*injector, *link, rng, policy);
    batch.status().CheckOk();
    central->Ingest(*batch).CheckOk();  // Partial batches are welcome.
    auto health = central->feed_health(cameras[i]->camera_id());
    health.status().CheckOk();
    storm_table.AddRow({sites[i].name, std::to_string(batch->attempted_frames),
                        std::to_string(batch->delivered_frames()),
                        std::to_string(batch->frames_lost),
                        std::to_string(batch->retransmissions),
                        util::FormatDouble(link->RetransmitEnergyJoules() * 1e3, 1),
                        camera::FeedHealthName(*health)});
  }
  storm_table.Print(std::cout);

  // The strict path refuses to pretend the dark camera doesn't exist.
  auto strict = central->CityWideEstimate();
  std::printf("\nstrict all-feeds estimate: %s\n", strict.status().ToString().c_str());

  camera::PartialPolicy partial_policy;
  partial_policy.min_live_feeds = 2;
  auto partial = central->CityWideEstimate(partial_policy);
  partial.status().CheckOk();
  double partial_realized = query::RelativeError(partial->estimate.y_approx, pooled_truth);
  std::printf(
      "partial estimate over %lld/%lld live feeds: %.3f (bound %.2f%%, coverage %.0f%%)\n"
      "pooled truth %.3f -> realized error %.2f%%\n"
      "\nThe lost frames only shrank the delivered samples — survivors are\n"
      "still a uniform subsample, so the partial answer stays certified; the\n"
      "dark camera shows up as missing coverage, not as a silent bias.\n",
      static_cast<long long>(partial->strata_combined),
      static_cast<long long>(partial->strata_total), partial->estimate.y_approx,
      partial->estimate.err_b * 100.0, partial->coverage * 100.0, pooled_truth,
      partial_realized * 100.0);
  return 0;
}
