// smokescreen_cli — the administrator's command-line front end.
//
// Generate a degradation-accuracy profile, persist it, choose a tradeoff
// against a public-preference error budget, and report what the chosen
// degradation buys (bandwidth / energy / privacy):
//
//   smokescreen_cli --dataset ua-detrac --model yolov4 --agg AVG
//       --frames 4000 --max-error 0.15 --profile-out /tmp/profile.csv
//
//   smokescreen_cli --profile-in /tmp/profile.csv --max-error 0.10
//
// Flags:
//   --dataset night-street|ua-detrac|MVI_40771|MVI_40775   (default ua-detrac)
//   --model   yolov4|maskrcnn                              (default yolov4)
//   --agg     AVG|SUM|COUNT|MAX|MIN|VAR                    (default AVG)
//   --frames  N        scale the preset to N frames        (default full)
//   --max-error X      error budget for choosing a tradeoff (default 0.15)
//   --restrict a,b     classes that MUST be removed (person/face)
//   --profile-out P    save the generated profile as CSV
//   --query "Q"        declarative spelling, e.g.
//                      "SELECT COUNT(car >= 8) FROM ua-detrac USING yolov4"
//                      (overrides --dataset/--model/--agg)
//   --profile-in P     skip generation; choose from a saved profile
//   --slices           render the three initial cube slices (§3.1) as plots
//   --seed S           RNG seed                            (default 2026)
//   --threads N        profiler worker threads; 0 = hardware concurrency
//                      (default 0; the profile is bit-identical at any N)
//   --batch-size N     cap frames per batched model invocation; 0 = unlimited
//                      (default 0; results are identical at any N)
//   --output-store P   warm-start the output cache from P when it exists,
//                      and save the cache back to P after the run
//   --metrics-out P    write a JSON snapshot of the process-wide metrics
//                      registry (counters/gauges/histograms) to P at exit;
//                      the snapshot's output_source.* counters equal the
//                      printed "accounting:" line exactly

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>

#include "core/admin_session.h"
#include "core/candidate_design.h"
#include "core/estimator_api.h"
#include "core/profile_io.h"
#include "core/profiler.h"
#include "core/tradeoff.h"
#include "degrade/cost_model.h"
#include "detect/models.h"
#include "detect/registry.h"
#include "query/executor.h"
#include "query/output_store.h"
#include "query/parser.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

namespace {

struct Flags {
  std::string dataset = "ua-detrac";
  std::string model = "yolov4";
  std::string aggregate = "AVG";
  int64_t frames = 0;
  double max_error = 0.15;
  std::string restrict_classes;
  std::string profile_out;
  std::string profile_in;
  std::string query_text;
  bool slices = false;
  uint64_t seed = 2026;
  int threads = 0;         // 0 = hardware concurrency.
  int64_t batch_size = 0;  // 0 = unlimited.
  std::string output_store;
  std::string metrics_out;
};

util::Result<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> util::Result<std::string> {
      if (i + 1 >= argc) return util::Status::InvalidArgument("missing value for " + arg);
      return std::string(argv[++i]);
    };
    if (arg == "--dataset") {
      SMK_ASSIGN_OR_RETURN(flags.dataset, next());
    } else if (arg == "--model") {
      SMK_ASSIGN_OR_RETURN(flags.model, next());
    } else if (arg == "--agg") {
      SMK_ASSIGN_OR_RETURN(flags.aggregate, next());
    } else if (arg == "--frames") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(flags.frames, util::ParseInt(v));
    } else if (arg == "--max-error") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(flags.max_error, util::ParseDouble(v));
    } else if (arg == "--threads") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(int64_t threads, util::ParseInt(v));
      flags.threads = static_cast<int>(threads);
    } else if (arg == "--batch-size") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(flags.batch_size, util::ParseInt(v));
      if (flags.batch_size < 0) {
        return util::Status::InvalidArgument("--batch-size must be >= 0 (0 = unlimited)");
      }
    } else if (arg == "--output-store") {
      SMK_ASSIGN_OR_RETURN(flags.output_store, next());
      if (flags.output_store.empty()) {
        return util::Status::InvalidArgument("--output-store path must be non-empty");
      }
    } else if (arg == "--metrics-out") {
      SMK_ASSIGN_OR_RETURN(flags.metrics_out, next());
      if (flags.metrics_out.empty()) {
        return util::Status::InvalidArgument("--metrics-out path must be non-empty");
      }
    } else if (arg == "--restrict") {
      SMK_ASSIGN_OR_RETURN(flags.restrict_classes, next());
    } else if (arg == "--profile-out") {
      SMK_ASSIGN_OR_RETURN(flags.profile_out, next());
    } else if (arg == "--profile-in") {
      SMK_ASSIGN_OR_RETURN(flags.profile_in, next());
    } else if (arg == "--query") {
      SMK_ASSIGN_OR_RETURN(flags.query_text, next());
    } else if (arg == "--slices") {
      flags.slices = true;
    } else if (arg == "--seed") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(int64_t seed, util::ParseInt(v));
      flags.seed = static_cast<uint64_t>(seed);
    } else if (arg == "--help" || arg == "-h") {
      return util::Status::InvalidArgument("help requested");
    } else {
      return util::Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return flags;
}

util::Result<video::ScenePreset> PresetFromName(const std::string& name) {
  static const std::map<std::string, video::ScenePreset> kPresets = {
      {"night-street", video::ScenePreset::kNightStreet},
      {"ua-detrac", video::ScenePreset::kUaDetrac},
      {"MVI_40771", video::ScenePreset::kMvi40771},
      {"MVI_40775", video::ScenePreset::kMvi40775},
  };
  auto it = kPresets.find(name);
  if (it == kPresets.end()) return util::Status::NotFound("unknown dataset: " + name);
  return it->second;
}

/// End-of-run observability: prints the exact invocation/hit accounting (the
/// line CI parses against the JSON export) and, when requested, snapshots
/// the process-wide registry to `metrics_out` atomically.
void DumpMetrics(const query::FrameOutputSource& source, const std::string& metrics_out) {
  std::printf("accounting: model_invocations=%lld cache_hits=%lld\n",
              static_cast<long long>(source.model_invocations()),
              static_cast<long long>(source.cache_hits()));
  if (metrics_out.empty()) return;
  util::MetricsSnapshot snapshot = util::MetricsRegistry::Default().Snapshot();
  snapshot.WriteJson(util::Env::Default(), metrics_out).CheckOk();
  std::printf("metrics written to %s\n", metrics_out.c_str());
}

int Run(Flags flags) {
  // A declarative --query overrides --dataset/--model/--agg.
  query::QuerySpec parsed_spec;
  bool have_parsed_spec = false;
  if (!flags.query_text.empty()) {
    auto parsed = query::ParseQuery(flags.query_text);
    parsed.status().CheckOk();
    parsed_spec = parsed->spec;
    have_parsed_spec = true;
    flags.dataset = parsed->dataset;
    flags.model = parsed->model;
    flags.aggregate = query::AggregateFunctionName(parsed->spec.aggregate);
  }
  // Load-or-generate the profile.
  core::Profile profile;
  if (!flags.profile_in.empty()) {
    auto loaded = core::LoadProfile(flags.profile_in);
    loaded.status().CheckOk();
    profile = *loaded;
    std::printf("loaded profile: %zu points, %s on %s/%s\n", profile.points.size(),
                query::AggregateFunctionName(profile.spec.aggregate),
                profile.dataset_name.c_str(), profile.detector_name.c_str());
  }

  auto preset = PresetFromName(flags.profile_in.empty() ? flags.dataset : profile.dataset_name);
  // A loaded profile's dataset may be a scaled variant; fall back by prefix.
  video::ScenePreset scene = video::ScenePreset::kUaDetrac;
  if (preset.ok()) {
    scene = *preset;
  } else {
    for (const char* candidate : {"night-street", "ua-detrac", "MVI_40771", "MVI_40775"}) {
      if (util::StartsWith(flags.profile_in.empty() ? flags.dataset : profile.dataset_name,
                           candidate)) {
        scene = *PresetFromName(candidate);
      }
    }
  }

  auto dataset = flags.frames > 0 ? video::MakePresetScaled(scene, flags.frames)
                                  : video::MakePreset(scene);
  dataset.status().CheckOk();
  auto model = detect::MakeDetector(flags.model);
  model.status().CheckOk();
  detect::SimYoloV4 person_detector;
  detect::SimMtcnn face_detector;
  auto prior = detect::ClassPriorIndex::Build(*dataset, person_detector, face_detector);
  prior.status().CheckOk();

  query::QuerySpec spec;
  if (have_parsed_spec) {
    spec = parsed_spec;
  } else if (flags.profile_in.empty()) {
    auto agg = query::AggregateFunctionFromName(flags.aggregate);
    agg.status().CheckOk();
    spec.aggregate = *agg;
  } else {
    spec = profile.spec;
  }
  query::FrameOutputSource source(*dataset, **model, video::ObjectClass::kCar);
  source.set_max_batch_size(flags.batch_size);

  // Validate the output-store path BEFORE any profiling work: an existing
  // file must load and match the dataset/model; a fresh path must point into
  // an existing directory (so the save at the end cannot fail late).
  if (!flags.output_store.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(flags.output_store, ec)) {
      // Salvage rather than strict-load: a partially corrupted store still
      // yields its CRC-verified columns, and the quarantined remainder is
      // simply recomputed (and re-persisted) by the run below.
      auto store = query::OutputStore::Salvage(flags.output_store);
      store.status().CheckOk();
      if (!store->report.clean()) {
        std::fprintf(stderr, "warning: %s is damaged (%s); loading verified columns only\n",
                     flags.output_store.c_str(), store->report.Summary().c_str());
      }
      auto loaded = source.Preload(store->store);
      loaded.status().CheckOk();
      std::printf("warm-started %lld cached outputs from %s\n",
                  static_cast<long long>(*loaded), flags.output_store.c_str());
    } else {
      std::filesystem::path parent = std::filesystem::path(flags.output_store).parent_path();
      if (!parent.empty() && !std::filesystem::is_directory(parent, ec)) {
        std::fprintf(stderr, "--output-store: directory %s does not exist\n",
                     parent.string().c_str());
        return 2;
      }
    }
  }
  stats::Rng rng(flags.seed);

  if (flags.profile_in.empty()) {
    core::CandidateGridOptions grid_opts;
    grid_opts.min_fraction = 0.05;
    grid_opts.max_fraction = 0.50;
    grid_opts.fraction_step = 0.05;
    grid_opts.num_resolutions = 5;
    grid_opts.include_class_combinations = true;
    for (const std::string& name : util::Split(flags.restrict_classes, ',')) {
      if (name.empty()) continue;
      auto cls = video::ObjectClassFromName(std::string(util::Trim(name)));
      cls.status().CheckOk();
      grid_opts.required_restricted.Add(*cls);
    }
    auto grid = core::BuildCandidateGrid(**model, grid_opts);
    grid.status().CheckOk();
    std::printf("profiling %zu candidates on %s (%lld frames) ...\n", grid->size(),
                dataset->name().c_str(), static_cast<long long>(dataset->num_frames()));

    core::ProfilerOptions opts;
    opts.use_correction_set = true;
    opts.early_stop = false;
    opts.num_threads = flags.threads;
    core::Profiler profiler(source, *prior, spec, opts);
    auto generated = profiler.Generate(*grid, rng);
    generated.status().CheckOk();
    profile = *generated;
    const core::ProfilerReport& report = profiler.last_report();
    std::printf("generated %zu profile points (%lld model invocations)\n",
                profile.points.size(), static_cast<long long>(source.model_invocations()));
    std::printf(
        "profiling stages: correction %.3fs, hypercube %.3fs, total %.3fs\n"
        "  (%d threads, %lld groups, %lld invocations, %lld cache hits)\n",
        report.correction_seconds, report.groups_seconds, report.total_seconds,
        report.num_threads, static_cast<long long>(report.num_groups),
        static_cast<long long>(report.model_invocations),
        static_cast<long long>(report.cache_hits));
    if (!flags.profile_out.empty()) {
      core::SaveProfile(profile, flags.profile_out).CheckOk();
      std::printf("profile saved to %s\n", flags.profile_out.c_str());
    }
  }

  // Administration procedure (§3.1): show the three initial cube slices.
  if (flags.slices) {
    core::AdminSession session(profile, (*model)->max_resolution());
    for (const core::AdminSession::Slice& slice : session.InitialSlices()) {
      auto plot = session.RenderSlice(slice);
      if (plot.ok()) {
        std::printf("\n%s\n", plot->c_str());
      } else {
        std::printf("\n(slice \"%s\" empty: %s)\n", slice.title.c_str(),
                    plot.status().ToString().c_str());
      }
    }
  }

  // Choose a tradeoff against the budget.
  auto choice = core::ChooseTradeoff(profile, flags.max_error, (*model)->max_resolution());
  if (!choice.ok()) {
    std::printf("no candidate meets the %.1f%% budget: %s\n", flags.max_error * 100.0,
                choice.status().ToString().c_str());
    DumpMetrics(source, flags.metrics_out);
    return 1;
  }
  std::printf("\nchosen tradeoff: %s (bound %.2f%%)\n", choice->interventions.ToString().c_str(),
              choice->err_bound * 100.0);

  // What the degradation buys.
  auto savings = degrade::EstimateSavings(*dataset, *prior, choice->interventions,
                                          (*model)->max_resolution());
  savings.status().CheckOk();
  util::TablePrinter table({"benefit", "value"});
  table.AddRow({"frames transmitted", util::FormatPercent(savings->frames_fraction)});
  table.AddRow({"bytes transmitted", util::FormatPercent(savings->bytes_fraction)});
  table.AddRow({"energy (proxy)", util::FormatPercent(savings->energy_fraction)});
  table.AddRow({"restricted frames removed",
                util::FormatPercent(savings->restricted_removed_fraction)});
  table.AddRow({"faces still recognizable",
                util::FormatPercent(savings->faces_recognizable_fraction)});
  table.Print(std::cout);

  // Execute the degraded query.
  auto result = core::ResultErrorEst(source, *prior, spec, choice->interventions, 0.05, rng);
  result.status().CheckOk();
  std::printf("\napproximate %s answer: %.4f (err bound %.2f%%, %lld frames processed)\n",
              query::AggregateFunctionName(spec.aggregate), result->estimate.y_approx,
              result->estimate.err_b * 100.0, static_cast<long long>(result->sample_size));

  if (!flags.output_store.empty()) {
    query::OutputStore store = source.ExportStore();
    store.Save(flags.output_store).CheckOk();
    std::printf("output store saved to %s (%lld entries, %zu columns)\n",
                flags.output_store.c_str(), static_cast<long long>(store.TotalEntries()),
                store.columns().size());
  }
  DumpMetrics(source, flags.metrics_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n\nusage: smokescreen_cli [--dataset D] [--model M] [--agg A]\n"
                         "  [--frames N] [--max-error X] [--restrict person,face]\n"
                         "  [--profile-out P | --profile-in P] [--seed S] [--threads N]\n"
                         "  [--batch-size N] [--output-store P] [--metrics-out P]\n",
                 flags.status().ToString().c_str());
    return 2;
  }
  return Run(*flags);
}
