// smokescreen_cli — the administrator's command-line front end.
//
// Generate a degradation-accuracy profile, persist it, choose a tradeoff
// against a public-preference error budget, and report what the chosen
// degradation buys (bandwidth / energy / privacy):
//
//   smokescreen_cli --dataset ua-detrac --model yolov4 --agg AVG
//       --frames 4000 --max-error 0.15 --profile-out /tmp/profile.csv
//
//   smokescreen_cli --profile-in /tmp/profile.csv --max-error 0.10
//
// The CLI is a thin client of engine::Runtime: one Runtime owns the shared
// executor, the metrics registry, the per-(dataset, model) output cache and
// the profile cache, and every request runs as an engine::Session. With
// --clients N the same query is served to N concurrent sessions — they share
// one workload (one memo cache, cross-session exactly-once misses) and the
// CLI asserts the N profiles are bit-identical to the serial answer.
//
// Flags:
//   --dataset night-street|ua-detrac|MVI_40771|MVI_40775   (default ua-detrac)
//   --model   yolov4|maskrcnn                              (default yolov4)
//   --agg     AVG|SUM|COUNT|MAX|MIN|VAR                    (default AVG)
//   --frames  N        scale the preset to N frames        (default full)
//   --max-error X      error budget for choosing a tradeoff (default 0.15)
//   --restrict a,b     classes that MUST be removed (person/face)
//   --profile-out P    save the generated profile as CSV
//   --query "Q"        declarative spelling, e.g.
//                      "SELECT COUNT(car >= 8) FROM ua-detrac USING yolov4"
//                      (overrides --dataset/--model/--agg)
//   --profile-in P     skip generation; choose from a saved profile
//   --slices           render the three initial cube slices (§3.1) as plots
//   --seed S           RNG seed                            (default 2026)
//   --threads N        shared executor width; 0 = hardware concurrency
//                      (default 0; the profile is bit-identical at any N)
//   --batch-size N     cap frames per batched model invocation; 0 = unlimited
//                      (default 0; results are identical at any N)
//   --pool-min-chunk N frames per model invocation when a cold miss batch
//                      fans out on the executor; 0 = the source default
//                      (default 0; results are identical at any N)
//   --clients N        serve the profile request to N concurrent sessions
//                      over the shared workload (default 1); the profiles
//                      must be bit-identical at any N
//   --output-store P   warm-start the output cache from P when it exists,
//                      and save the cache back to P after the run
//   --metrics-out P    write a JSON snapshot of the process-wide metrics
//                      registry (counters/gauges/histograms) to P at exit;
//                      the snapshot's output_source.* counters equal the
//                      printed "accounting:" line exactly

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/admin_session.h"
#include "core/candidate_design.h"
#include "core/profile_io.h"
#include "core/profiler.h"
#include "core/tradeoff.h"
#include "degrade/cost_model.h"
#include "engine/runtime.h"
#include "engine/session.h"
#include "query/output_store.h"
#include "query/parser.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

namespace {

struct Flags {
  std::string dataset = "ua-detrac";
  std::string model = "yolov4";
  std::string aggregate = "AVG";
  int64_t frames = 0;
  double max_error = 0.15;
  std::string restrict_classes;
  std::string profile_out;
  std::string profile_in;
  std::string query_text;
  bool slices = false;
  uint64_t seed = 2026;
  int threads = 0;            // 0 = hardware concurrency.
  int64_t batch_size = 0;     // 0 = unlimited.
  int64_t pool_min_chunk = 0; // 0 = source default.
  int clients = 1;
  std::string output_store;
  std::string metrics_out;
};

util::Result<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> util::Result<std::string> {
      if (i + 1 >= argc) return util::Status::InvalidArgument("missing value for " + arg);
      return std::string(argv[++i]);
    };
    if (arg == "--dataset") {
      SMK_ASSIGN_OR_RETURN(flags.dataset, next());
    } else if (arg == "--model") {
      SMK_ASSIGN_OR_RETURN(flags.model, next());
    } else if (arg == "--agg") {
      SMK_ASSIGN_OR_RETURN(flags.aggregate, next());
    } else if (arg == "--frames") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(flags.frames, util::ParseInt(v));
    } else if (arg == "--max-error") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(flags.max_error, util::ParseDouble(v));
    } else if (arg == "--threads") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(int64_t threads, util::ParseInt(v));
      flags.threads = static_cast<int>(threads);
    } else if (arg == "--batch-size") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(flags.batch_size, util::ParseInt(v));
      if (flags.batch_size < 0) {
        return util::Status::InvalidArgument("--batch-size must be >= 0 (0 = unlimited)");
      }
    } else if (arg == "--pool-min-chunk") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(flags.pool_min_chunk, util::ParseInt(v));
      if (flags.pool_min_chunk < 0) {
        return util::Status::InvalidArgument("--pool-min-chunk must be >= 0 (0 = default)");
      }
    } else if (arg == "--clients") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(int64_t clients, util::ParseInt(v));
      if (clients < 1) {
        return util::Status::InvalidArgument("--clients must be >= 1");
      }
      flags.clients = static_cast<int>(clients);
    } else if (arg == "--output-store") {
      SMK_ASSIGN_OR_RETURN(flags.output_store, next());
      if (flags.output_store.empty()) {
        return util::Status::InvalidArgument("--output-store path must be non-empty");
      }
    } else if (arg == "--metrics-out") {
      SMK_ASSIGN_OR_RETURN(flags.metrics_out, next());
      if (flags.metrics_out.empty()) {
        return util::Status::InvalidArgument("--metrics-out path must be non-empty");
      }
    } else if (arg == "--restrict") {
      SMK_ASSIGN_OR_RETURN(flags.restrict_classes, next());
    } else if (arg == "--profile-out") {
      SMK_ASSIGN_OR_RETURN(flags.profile_out, next());
    } else if (arg == "--profile-in") {
      SMK_ASSIGN_OR_RETURN(flags.profile_in, next());
    } else if (arg == "--query") {
      SMK_ASSIGN_OR_RETURN(flags.query_text, next());
    } else if (arg == "--slices") {
      flags.slices = true;
    } else if (arg == "--seed") {
      SMK_ASSIGN_OR_RETURN(std::string v, next());
      SMK_ASSIGN_OR_RETURN(int64_t seed, util::ParseInt(v));
      flags.seed = static_cast<uint64_t>(seed);
    } else if (arg == "--help" || arg == "-h") {
      return util::Status::InvalidArgument("help requested");
    } else {
      return util::Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return flags;
}

/// End-of-run observability: prints the exact invocation/hit accounting (the
/// line CI parses against the JSON export) and, when requested, snapshots
/// the runtime's registry to `metrics_out` atomically.
void DumpMetrics(const engine::Runtime& runtime, const query::FrameOutputSource& source,
                 const std::string& metrics_out) {
  std::printf("accounting: model_invocations=%lld cache_hits=%lld\n",
              static_cast<long long>(source.model_invocations()),
              static_cast<long long>(source.cache_hits()));
  if (metrics_out.empty()) return;
  util::MetricsSnapshot snapshot = runtime.registry().Snapshot();
  snapshot.WriteJson(runtime.env(), metrics_out).CheckOk();
  std::printf("metrics written to %s\n", metrics_out.c_str());
}

int Run(Flags flags) {
  // A declarative --query overrides --dataset/--model/--agg.
  query::QuerySpec parsed_spec;
  bool have_parsed_spec = false;
  if (!flags.query_text.empty()) {
    auto parsed = query::ParseQuery(flags.query_text);
    parsed.status().CheckOk();
    parsed_spec = parsed->spec;
    have_parsed_spec = true;
    flags.dataset = parsed->dataset;
    flags.model = parsed->model;
    flags.aggregate = query::AggregateFunctionName(parsed->spec.aggregate);
  }
  // Load the profile early when replaying one: its provenance names the
  // dataset/model the workload must be built from.
  core::ProfileHandle profile;
  if (!flags.profile_in.empty()) {
    auto loaded = core::LoadProfile(flags.profile_in);
    loaded.status().CheckOk();
    profile = core::MakeProfileHandle(std::move(*loaded));
    std::printf("loaded profile: %zu points, %s on %s/%s\n", profile->points.size(),
                query::AggregateFunctionName(profile->spec.aggregate),
                profile->dataset_name.c_str(), profile->detector_name.c_str());
  }

  const std::string dataset_name =
      flags.profile_in.empty() ? flags.dataset : profile->dataset_name;
  auto preset = engine::PresetByName(dataset_name);
  // A loaded profile's dataset may be a scaled variant; fall back by prefix.
  video::ScenePreset scene = video::ScenePreset::kUaDetrac;
  if (preset.ok()) {
    scene = *preset;
  } else {
    for (const char* candidate : {"night-street", "ua-detrac", "MVI_40771", "MVI_40775"}) {
      if (util::StartsWith(dataset_name, candidate)) {
        scene = *engine::PresetByName(candidate);
      }
    }
  }

  // One Runtime per process: shared executor, registry, admission, caches.
  engine::RuntimeOptions runtime_opts;
  runtime_opts.num_threads = flags.threads;
  runtime_opts.max_batch_size = flags.batch_size;
  runtime_opts.pool_min_chunk = flags.pool_min_chunk;
  runtime_opts.default_seed = flags.seed;
  auto runtime = engine::Runtime::Create(runtime_opts);
  runtime.status().CheckOk();

  engine::WorkloadDesc desc;
  desc.preset = scene;
  desc.frames = flags.frames;
  desc.detector_name = flags.model;
  desc.target_class = video::ObjectClass::kCar;
  desc.output_store_path = flags.output_store;
  auto workload = (*runtime)->GetWorkload(desc);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 2;
  }
  if (!flags.output_store.empty()) {
    if (!(*workload)->warm_start_damage().empty()) {
      std::fprintf(stderr, "warning: %s is damaged (%s); loading verified columns only\n",
                   flags.output_store.c_str(), (*workload)->warm_start_damage().c_str());
    }
    if ((*workload)->warm_start_entries() > 0) {
      std::printf("warm-started %lld cached outputs from %s\n",
                  static_cast<long long>((*workload)->warm_start_entries()),
                  flags.output_store.c_str());
    }
  }

  query::QuerySpec spec;
  if (have_parsed_spec) {
    spec = parsed_spec;
  } else if (flags.profile_in.empty()) {
    auto agg = query::AggregateFunctionFromName(flags.aggregate);
    agg.status().CheckOk();
    spec.aggregate = *agg;
  } else {
    spec = profile->spec;
  }

  engine::SessionConfig session_config;
  session_config.spec = spec;
  session_config.seed = flags.seed;
  session_config.profiler.use_correction_set = true;
  session_config.profiler.early_stop = false;
  auto session = (*runtime)->StartSession(*workload, session_config);
  session.status().CheckOk();

  if (flags.profile_in.empty()) {
    core::CandidateGridOptions grid_opts;
    grid_opts.min_fraction = 0.05;
    grid_opts.max_fraction = 0.50;
    grid_opts.fraction_step = 0.05;
    grid_opts.num_resolutions = 5;
    grid_opts.include_class_combinations = true;
    for (const std::string& name : util::Split(flags.restrict_classes, ',')) {
      if (name.empty()) continue;
      auto cls = video::ObjectClassFromName(std::string(util::Trim(name)));
      cls.status().CheckOk();
      grid_opts.required_restricted.Add(*cls);
    }
    auto grid = core::BuildCandidateGrid((*workload)->detector(), grid_opts);
    grid.status().CheckOk();
    std::printf("profiling %zu candidates on %s (%lld frames) ...\n", grid->size(),
                (*workload)->dataset().name().c_str(),
                static_cast<long long>((*workload)->dataset().num_frames()));

    if (flags.clients > 1) {
      // Serving mode: N concurrent sessions ask for the same profile over
      // the shared workload. The memo cache dedups misses across sessions
      // (exactly-once) and every client must get the bit-identical answer.
      std::vector<core::ProfileHandle> handles(flags.clients);
      std::vector<int> from_cache(flags.clients, 0);
      std::vector<std::thread> clients;
      clients.reserve(flags.clients);
      for (int c = 0; c < flags.clients; ++c) {
        clients.emplace_back([&, c]() {
          auto client_session = (*runtime)->StartSession(*workload, session_config);
          client_session.status().CheckOk();
          auto handle = (*client_session)->Profile(*grid);
          handle.status().CheckOk();
          handles[c] = *handle;
          from_cache[c] = (*client_session)->last_profile_from_cache() ? 1 : 0;
        });
      }
      for (std::thread& t : clients) t.join();
      int cache_hits = 0;
      bool identical = true;
      for (int c = 0; c < flags.clients; ++c) {
        cache_hits += from_cache[c];
        identical = identical && engine::ProfilesBitIdentical(*handles[0], *handles[c]);
      }
      std::printf("serving: clients=%d bit_identical=%s profile_cache_hits=%d\n",
                  flags.clients, identical ? "yes" : "NO", cache_hits);
      if (!identical) {
        std::fprintf(stderr, "concurrent sessions diverged from the serial profile\n");
        return 3;
      }
      profile = handles[0];
    } else {
      auto generated = (*session)->Profile(*grid);
      generated.status().CheckOk();
      profile = *generated;
    }
    const core::ProfilerReport& report = (*session)->last_report();
    std::printf("generated %zu profile points (%lld model invocations)\n",
                profile->points.size(),
                static_cast<long long>((*workload)->source().model_invocations()));
    std::printf(
        "profiling stages: correction %.3fs, hypercube %.3fs, total %.3fs\n"
        "  (%d threads, %lld groups, %lld invocations, %lld cache hits)\n",
        report.correction_seconds, report.groups_seconds, report.total_seconds,
        report.num_threads, static_cast<long long>(report.num_groups),
        static_cast<long long>(report.model_invocations),
        static_cast<long long>(report.cache_hits));
    if (!flags.profile_out.empty()) {
      core::SaveProfile(*profile, flags.profile_out).CheckOk();
      std::printf("profile saved to %s\n", flags.profile_out.c_str());
    }
  }

  const int max_resolution = (*workload)->detector().max_resolution();

  // Administration procedure (§3.1): show the three initial cube slices.
  if (flags.slices) {
    core::AdminSession admin(profile, max_resolution);
    for (const core::AdminSession::Slice& slice : admin.InitialSlices()) {
      auto plot = admin.RenderSlice(slice);
      if (plot.ok()) {
        std::printf("\n%s\n", plot->c_str());
      } else {
        std::printf("\n(slice \"%s\" empty: %s)\n", slice.title.c_str(),
                    plot.status().ToString().c_str());
      }
    }
  }

  // Choose a tradeoff against the budget.
  auto choice = core::ChooseTradeoff(*profile, flags.max_error, max_resolution);
  if (!choice.ok()) {
    std::printf("no candidate meets the %.1f%% budget: %s\n", flags.max_error * 100.0,
                choice.status().ToString().c_str());
    DumpMetrics(**runtime, (*workload)->source(), flags.metrics_out);
    return 1;
  }
  std::printf("\nchosen tradeoff: %s (bound %.2f%%)\n", choice->interventions.ToString().c_str(),
              choice->err_bound * 100.0);

  // What the degradation buys.
  auto savings = degrade::EstimateSavings((*workload)->dataset(), (*workload)->prior(),
                                          choice->interventions, max_resolution);
  savings.status().CheckOk();
  util::TablePrinter table({"benefit", "value"});
  table.AddRow({"frames transmitted", util::FormatPercent(savings->frames_fraction)});
  table.AddRow({"bytes transmitted", util::FormatPercent(savings->bytes_fraction)});
  table.AddRow({"energy (proxy)", util::FormatPercent(savings->energy_fraction)});
  table.AddRow({"restricted frames removed",
                util::FormatPercent(savings->restricted_removed_fraction)});
  table.AddRow({"faces still recognizable",
                util::FormatPercent(savings->faces_recognizable_fraction)});
  table.Print(std::cout);

  // Execute the degraded query through the session (admission-gated, shared
  // memo cache, per-call deterministic RNG stream).
  auto result = (*session)->Execute(choice->interventions);
  result.status().CheckOk();
  std::printf("\napproximate %s answer: %.4f (err bound %.2f%%, %lld frames processed)\n",
              query::AggregateFunctionName(spec.aggregate), result->estimate.y_approx,
              result->estimate.err_b * 100.0, static_cast<long long>(result->sample_size));

  if (!flags.output_store.empty()) {
    (*runtime)->SaveStore(*workload).CheckOk();
    query::OutputStore store = (*workload)->source().ExportStore();
    std::printf("output store saved to %s (%lld entries, %zu columns)\n",
                flags.output_store.c_str(), static_cast<long long>(store.TotalEntries()),
                store.columns().size());
  }
  DumpMetrics(**runtime, (*workload)->source(), flags.metrics_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n\nusage: smokescreen_cli [--dataset D] [--model M] [--agg A]\n"
                         "  [--frames N] [--max-error X] [--restrict person,face]\n"
                         "  [--profile-out P | --profile-in P] [--seed S] [--threads N]\n"
                         "  [--batch-size N] [--pool-min-chunk N] [--clients N]\n"
                         "  [--output-store P] [--metrics-out P]\n",
                 flags.status().ToString().c_str());
    return 2;
  }
  return Run(*flags);
}
