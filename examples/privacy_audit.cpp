// Privacy audit: non-random interventions and profile repair (§3.2.5).
//
// A privacy-conscious administrator wants image removal (drop every frame
// containing a person) AND a reduced resolution. Both interventions are
// NON-RANDOM: sampled outputs are systematically biased, so the basic error
// bound can fall BELOW the true error — silently misleading the
// administrator. This example shows the failure and the repair:
//
//   1. estimate with the basic algorithm only       -> bound may be invalid
//   2. build a correction set (random degradation)  -> repair the bound
//   3. compare both against the (hidden) true error
//
// The trials run as an engine::Session: each Execute() draws its own
// deterministic per-call RNG stream, so the ten trials below are distinct
// samples yet the whole audit replays bit-identically.

#include <cstdio>
#include <iostream>

#include "core/estimator_api.h"
#include "core/repair.h"
#include "engine/runtime.h"
#include "engine/session.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

int main() {
  std::printf("=== Privacy audit: image removal + low resolution ===\n\n");
  auto runtime = engine::Runtime::Create({});
  runtime.status().CheckOk();
  engine::WorkloadDesc desc;
  desc.preset = video::ScenePreset::kUaDetrac;
  desc.frames = 6000;
  auto workload = (*runtime)->GetWorkload(desc);
  workload.status().CheckOk();
  query::FrameOutputSource& source = (*workload)->source();

  query::QuerySpec spec;
  spec.aggregate = query::AggregateFunction::kAvg;
  auto gt = query::ComputeGroundTruth(source, spec);
  gt.status().CheckOk();

  // The privacy policy: no frames with people, resolution capped at 192px.
  degrade::InterventionSet iv;
  iv.sample_fraction = 0.1;
  iv.resolution = 192;
  iv.restricted.Add(video::ObjectClass::kPerson);
  std::printf("Policy interventions: %s\n", iv.ToString().c_str());
  std::printf("Frames surviving removal: %zu of %lld\n\n",
              (*workload)->prior().FramesWithoutAny(iv.restricted).size(),
              static_cast<long long>((*workload)->dataset().num_frames()));

  // Size the correction set with the elbow heuristic (§3.3.1).
  stats::Rng rng(11);
  auto sizing = core::DetermineCorrectionSetSize(source, spec, 0.05, rng, 0.2);
  sizing.status().CheckOk();
  std::printf("Correction-set sizing: chose %lld frames (%.1f%% of the video)\n",
              static_cast<long long>(sizing->chosen_size), sizing->chosen_fraction * 100.0);
  auto correction = core::BuildCorrectionSet(source, spec, sizing->chosen_size, 0.05, rng);
  correction.status().CheckOk();

  engine::SessionConfig config;
  config.spec = spec;
  config.seed = 11;
  auto session = (*runtime)->StartSession(*workload, config);
  session.status().CheckOk();

  util::TablePrinter table({"trial", "true_err", "basic_bound", "basic_valid",
                            "repaired_bound", "repaired_valid"});
  int basic_wrong = 0, repaired_wrong = 0;
  const int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    auto result = (*session)->Execute(iv);
    result.status().CheckOk();
    auto repaired = core::RepairErrorBound(spec, *result, *correction);
    repaired.status().CheckOk();
    double true_err = query::RelativeError(result->estimate.y_approx, gt->y_true);

    bool basic_ok = result->estimate.err_b >= true_err;
    bool repaired_ok = *repaired >= true_err;
    if (!basic_ok) ++basic_wrong;
    if (!repaired_ok) ++repaired_wrong;
    table.AddRow({std::to_string(t), util::FormatPercent(true_err),
                  util::FormatPercent(result->estimate.err_b), basic_ok ? "yes" : "NO",
                  util::FormatPercent(*repaired), repaired_ok ? "yes" : "NO"});
  }
  table.Print(std::cout);

  std::printf(
      "\nBasic bound invalid in %d/%d trials (systematic bias from removal +\n"
      "low resolution); repaired bound invalid in %d/%d trials.\n",
      basic_wrong, kTrials, repaired_wrong, kTrials);
  std::printf(
      "\nTakeaway: under non-random interventions, only the correction-set\n"
      "repaired bound can be trusted when choosing a degradation level.\n");
  return 0;
}
