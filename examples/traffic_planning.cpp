// Traffic planning: the SUM / COUNT / MAX workloads of §3.2.2–3.2.4 on a
// busy-intersection corpus (UA-DETRAC analogue).
//
//  * SUM(cars)            — total car-frames over the window (congestion load)
//  * COUNT(frames >= 8)   — how long congestion exceeded 8 cars (lane closure)
//  * MAX(cars) via q=0.99 — the most crowded moment
//
// All three queries run as engine::Sessions over ONE shared workload: the
// runtime materializes the corpus/model pair once and every query reuses the
// same memoized output cache, so frames sampled by the SUM query are free
// for COUNT and MAX. Each query is answered from a 5% random sample and the
// estimate is shown with its error bound and the realized error.

#include <cstdio>
#include <iostream>

#include "engine/runtime.h"
#include "engine/session.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

int main() {
  std::printf("=== Traffic planning on a busy intersection ===\n\n");
  auto runtime = engine::Runtime::Create({});
  runtime.status().CheckOk();
  engine::WorkloadDesc desc;
  desc.preset = video::ScenePreset::kUaDetrac;
  desc.frames = 6000;
  auto workload = (*runtime)->GetWorkload(desc);
  workload.status().CheckOk();

  degrade::InterventionSet iv;
  iv.sample_fraction = 0.05;  // Process only 5% of the video.

  struct QueryCase {
    const char* description;
    query::QuerySpec spec;
  };
  std::vector<QueryCase> cases;
  {
    query::QuerySpec sum;
    sum.aggregate = query::AggregateFunction::kSum;
    cases.push_back({"SUM(cars): total congestion load", sum});
    query::QuerySpec count;
    count.aggregate = query::AggregateFunction::kCount;
    count.count_threshold = 8;
    cases.push_back({"COUNT(frames with >= 8 cars): heavy-congestion time", count});
    query::QuerySpec max;
    max.aggregate = query::AggregateFunction::kMax;
    cases.push_back({"MAX(cars) ~ 0.99-quantile: peak crowding", max});
  }

  util::TablePrinter table(
      {"query", "estimate", "err_bound", "true_value", "realized_err"});
  for (const QueryCase& qc : cases) {
    // One session per query: same workload, same seed, per-call RNG streams.
    engine::SessionConfig config;
    config.spec = qc.spec;
    config.seed = 7;
    auto session = (*runtime)->StartSession(*workload, config);
    session.status().CheckOk();

    auto gt = query::ComputeGroundTruth((*workload)->source(), qc.spec);
    gt.status().CheckOk();
    auto result = (*session)->Execute(iv);
    result.status().CheckOk();

    double realized;
    if (query::IsMeanFamily(qc.spec.aggregate)) {
      realized = query::RelativeError(result->estimate.y_approx, gt->y_true);
    } else {
      auto rank_err =
          query::RankRelativeError(gt->outputs, result->estimate.y_approx, gt->y_true);
      rank_err.status().CheckOk();
      realized = *rank_err;
    }
    table.AddRow({qc.spec.ToString(), util::FormatDouble(result->estimate.y_approx, 2),
                  util::FormatPercent(result->estimate.err_b),
                  util::FormatDouble(gt->y_true, 2), util::FormatPercent(realized)});
    std::printf("%s\n", qc.description);
  }
  std::printf("\nResults from a 5%% sample (bounds hold w.p. >= 95%%):\n");
  table.Print(std::cout);

  std::printf(
      "\nThe planner reads: SUM within its bound sizes road works, COUNT says\n"
      "how many frames exceeded the lane-closure threshold, and MAX flags the\n"
      "single worst moment (rank-relative bound).\n");
  return 0;
}
