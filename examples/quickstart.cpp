// Quickstart: the paper's running example (Harry, Examples 1-3).
//
// A city collects night-street surveillance video and wants the average
// number of cars per frame within 10% of the true answer, while degrading
// the video as much as possible for privacy and energy reasons.
//
//  1. Start an engine::Runtime and materialize the night-street workload
//     (corpus + detector + restricted-class prior + shared output cache).
//  2. Open a Session and profile the AVG(car) query over a candidate grid.
//  3. Choose the most aggressive degradation whose error bound is <= 10%.
//  4. Run the degraded query and compare against the (normally hidden) truth.

#include <cstdio>
#include <iostream>

#include "core/candidate_design.h"
#include "core/profiler.h"
#include "core/tradeoff.h"
#include "engine/runtime.h"
#include "engine/session.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "video/presets.h"

using namespace smokescreen;

int main() {
  std::printf("=== Smokescreen quickstart: Harry's car-counting query ===\n\n");

  // --- 1. Runtime and workload -------------------------------------------
  std::printf("[1/4] Simulating the night-street corpus...\n");
  auto runtime = engine::Runtime::Create({});
  runtime.status().CheckOk();
  engine::WorkloadDesc desc;
  desc.preset = video::ScenePreset::kNightStreet;
  auto workload = (*runtime)->GetWorkload(desc);
  workload.status().CheckOk();
  const detect::ClassPriorIndex& prior = (*workload)->prior();
  std::printf("      %lld frames; person prior %.2f%%, face prior %.2f%%\n\n",
              static_cast<long long>((*workload)->dataset().num_frames()),
              prior.ContainmentFraction(video::ObjectClass::kPerson) * 100.0,
              prior.ContainmentFraction(video::ObjectClass::kFace) * 100.0);

  // --- 2. Profile generation ---------------------------------------------
  std::printf("[2/4] Generating the degradation-accuracy profile...\n");
  engine::SessionConfig config;
  config.spec.aggregate = query::AggregateFunction::kAvg;
  config.seed = 2026;
  config.profiler.use_correction_set = true;  // Repairs the non-random resolution knob.
  config.profiler.early_stop = false;
  auto session = (*runtime)->StartSession(*workload, config);
  session.status().CheckOk();

  core::CandidateGridOptions grid_opts;
  grid_opts.min_fraction = 0.05;
  grid_opts.max_fraction = 0.50;
  grid_opts.fraction_step = 0.05;
  grid_opts.num_resolutions = 6;
  grid_opts.include_class_combinations = false;
  auto grid = core::BuildCandidateGrid((*workload)->detector(), grid_opts);
  grid.status().CheckOk();

  auto profile = (*session)->Profile(*grid);
  profile.status().CheckOk();
  const core::ProfilerReport& report = (*session)->last_report();
  std::printf("      %zu profile points (%d worker threads, %lld model invocations)\n\n",
              (*profile)->points.size(), report.num_threads,
              static_cast<long long>(report.model_invocations));

  // Show one slice of the profile: error bound vs resolution at f = 0.50.
  util::TablePrinter slice_table({"resolution", "err_bound", "repaired"});
  for (const core::ProfilePoint& p : core::SliceByResolution(**profile, 0.50,
                                                             video::ClassSet::None())) {
    slice_table.AddRow({std::to_string(p.interventions.resolution),
                        util::FormatPercent(p.err_bound), p.repaired ? "yes" : "no"});
  }
  std::printf("Profile slice (sample fraction fixed at 0.50):\n");
  slice_table.Print(std::cout);
  std::printf("\n");

  // --- 3. Choose a tradeoff ----------------------------------------------
  const double kMaxError = 0.10;  // The maintenance department's 10% budget.
  std::printf("[3/4] Choosing the strongest degradation with bound <= %.0f%%...\n",
              kMaxError * 100.0);
  auto choice = (*session)->ChooseTradeoff(kMaxError);
  if (!choice.ok()) {
    std::printf("      no candidate meets the budget: %s\n",
                choice.status().ToString().c_str());
    return 1;
  }
  std::printf("      chosen: %s (bound %.2f%%)\n\n", choice->interventions.ToString().c_str(),
              choice->err_bound * 100.0);

  // --- 4. Execute the degraded query -------------------------------------
  std::printf("[4/4] Running the query under the chosen interventions...\n");
  auto result = (*session)->Execute(choice->interventions);
  result.status().CheckOk();

  auto gt = query::ComputeGroundTruth((*workload)->source(), (*session)->spec());
  gt.status().CheckOk();
  double realized = query::RelativeError(result->estimate.y_approx, gt->y_true);

  std::printf("      approximate answer : %.4f cars/frame\n", result->estimate.y_approx);
  std::printf("      true answer        : %.4f cars/frame (hidden in production)\n",
              gt->y_true);
  std::printf("      realized error     : %.2f%% (budget %.0f%%)\n", realized * 100.0,
              kMaxError * 100.0);
  std::printf("      frames processed   : %lld of %lld (%.1f%%)\n",
              static_cast<long long>(result->sample_size),
              static_cast<long long>((*workload)->dataset().num_frames()),
              100.0 * static_cast<double>(result->sample_size) /
                  static_cast<double>((*workload)->dataset().num_frames()));
  std::printf("\nDone: the city gets its answer from a heavily degraded stream.\n");
  return 0;
}
